//! Sharded subgraph execution: the owner-computes decomposition of the
//! PaK-graph, mapped one shard per NMP channel.
//!
//! Distributed PaKman partitions MacroNodes across MPI ranks by hashing each
//! (k-1)-mer and compacts the per-rank subgraphs mostly independently, with
//! boundary traffic exchanged via `MPI_Alltoallv` once per iteration. NMP-PaK's
//! scalability claim rests on the same decomposition mapped onto channels: each
//! channel's local memory holds one subgraph, and only TransferNodes whose
//! destination lives on another channel cross the inter-DIMM network. This
//! module is that execution model in software:
//!
//! * [`ShardedGraph`] — one [`PakGraph`] per shard (nodes assigned by the
//!   stable ownership hash [`nmp_pak_genome::shard_of_packed`]) plus the global
//!   rank mapping that ties local slots back to the single-graph slot space, so
//!   traces and statistics stay expressed in global slots;
//! * [`ShardedGraph::from_counted_kmers`] — shard-parallel construction from
//!   the owner-partitioned counted streams, with prefix-extension records
//!   exchanged to their owner at build time (the construction-time mailbox);
//! * [`compact_sharded`] — Iterative Compaction with P1/P2/P3 running
//!   per-shard and a batched, slot-ordered [`ShardMailbox`] exchanged **once
//!   per iteration** for cross-shard TransferNodes;
//! * [`ShardingTelemetry`] — the measured per-shard load and inter-shard
//!   traffic the hardware models consume instead of assuming uniformity.
//!
//! **Determinism contract.** Under the default lock-step schedule, sharding
//! changes *where* work executes, never what it computes: contigs, statistics,
//! and the recorded trace are bit-identical to the single-graph path at every
//! shard count and thread count. The load-bearing facts are (1) ownership is a
//! pure function of the (k-1)-mer, (2) each node is fully assembled on its
//! owner (all of a key's extension contributions are routed there), (3) the
//! mailbox is a stable partition of the canonical transfer stream, so
//! per-destination delivery order equals the serial order, and (4) every
//! reduction (histogram, counts) is order-free and every ordered artifact
//! (trace events, dirty set) is re-serialized from the canonical global-slot
//! order.
//!
//! **Async schedule.** [`crate::ShardSchedule::Async`] drops the per-iteration
//! thread barrier: shards run as queued tasks over a persistent worker pool,
//! each advancing its own wave counter and flushing mailbox lanes
//! ([`MailboxFlushStats`]) to destination shards as soon as its P3 finishes,
//! with a bounded number of unconsumed flushes per (src, dst) lane and
//! slot-tagged transfers within each flush. Wave completion is counted
//! through a shared ledger rather than joined: the last shard to finish a
//! wave re-arms the others, detects the global fixed point (a wave with zero
//! invalidations), applies the node threshold against the global census, and
//! enforces the iteration cap — so an empty or quiescent shard costs O(1) per
//! wave instead of three phase joins. Because `apply_transfer` is
//! order-sensitive (partial-count takes and path splits do not commute), each
//! destination buffers inbound flushes and applies a wave's worth in one
//! stable pass ordered by global source slot — the canonical stream order the
//! lock-step mailbox delivers — and deaths are published as *versioned* wave
//! numbers so a concurrent predicate always reads its wave-start snapshot.
//! The result is the *verified-equivalent* contract (DESIGN.md): final
//! contigs, the compacted graph, statistics and the flush ledger are
//! byte-identical to lock-step, while scheduling telemetry (iteration stats,
//! the profile, per-round timing) may differ. The equivalence is enforced by
//! a test sweep across shard counts, thread counts, and compaction modes.

use crate::compaction::{
    apply_transfer, assemble_trace_checks, fold_census, fold_transfers,
    is_invalidation_target_with, remove_sorted, CompactionOutcome, CompactionProfile,
    CompactionStats, IterationProfile, IterationStats, SizeHistogram,
};
use crate::config::{CompactionMode, PakmanConfig, ShardSchedule};
use crate::control::RunControl;
use crate::error::PakmanError;
use crate::graph::{build_segment, PakGraph};
use crate::kmer_count::{partition_counted_by_owner, CountedKmer};
use crate::macronode::MacroNode;
use crate::memory::MemoryBudget;
use crate::par::radix_sort_pairs;
use crate::trace::{CompactionTrace, IterationTrace, NodeCheck, UpdateEvent};
use crate::transfer::{ShardMailbox, TransferNode};
use nmp_pak_genome::{shard_of_packed, Kmer};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One shard's built parts: slot keys (ascending) and the slot vector.
type ShardParts = (Vec<u64>, Vec<Option<MacroNode>>);

/// The PaK-graph split into owner-computes shards, with the global rank mapping
/// that keeps every externally visible artifact (traces, statistics, the
/// compacted output graph) in single-graph slot coordinates.
#[derive(Debug, Clone)]
pub struct ShardedGraph {
    /// One subgraph per shard; local slots ascend in (k-1)-mer order.
    shards: Vec<PakGraph>,
    /// Packed (k-1)-mer of every global slot, ascending — identical to the
    /// single-graph slot layout.
    global_keys: Vec<u64>,
    /// Global slot → (owner shard, local slot).
    route: Vec<(u32, u32)>,
    /// Per shard: local slot → global slot (ascending, since local key order is
    /// a subsequence of the global key order).
    global_slots: Vec<Vec<u32>>,
    /// k-mer length the graph was built for.
    k: usize,
}

impl ShardedGraph {
    /// Builds the sharded graph from the sorted counted k-mer stream:
    /// owner-partitioned per-shard streams, a construction-time exchange of
    /// prefix-extension records to their owner shard, and one merge-scan build
    /// per shard (shard-parallel over up to `threads` workers).
    ///
    /// Every node comes out bit-identical to [`PakGraph::from_counted_kmers`]'s
    /// — all of a (k-1)-mer's extension contributions are routed to its owner —
    /// and the global slot layout (ascending keys over the union) is identical
    /// too. A shard count of 1 delegates to the single-graph builder outright.
    ///
    /// Warns (without panicking) when there are more shards than MacroNodes:
    /// the surplus shards own zero nodes and the corresponding channels idle.
    pub fn from_counted_kmers(
        counted: &[CountedKmer],
        k: usize,
        shard_count: usize,
        threads: usize,
    ) -> ShardedGraph {
        let shard_count = shard_count.max(1);
        if shard_count == 1 {
            return ShardedGraph::from_single(PakGraph::from_counted_kmers(counted, k, threads));
        }
        debug_assert!(k >= 2, "k = {k} must be at least 2 to form (k-1)-mers");
        let k1_len = k - 1;
        let k1_shift = (2 * k1_len) as u32;
        let k1_mask = (1u64 << k1_shift) - 1;

        // Owner-partitioned suffix streams: counted k-mers grouped by the owner
        // of their prefix (k-1)-mer (the node receiving the suffix extension).
        let suffix_streams = partition_counted_by_owner(counted, shard_count);

        // The construction-time exchange: prefix-extension records belong to
        // the *suffix* (k-1)-mer's owner, which is in general a different shard
        // than the k-mer's own — the same all-to-all pattern the compaction
        // mailbox batches per iteration.
        let mut sizes = vec![0usize; shard_count];
        for ck in counted {
            sizes[shard_of_packed(ck.kmer.packed() & k1_mask, shard_count)] += 1;
        }
        let mut jobs: Vec<(usize, Vec<(u64, u64)>)> = sizes
            .iter()
            .enumerate()
            .map(|(s, &size)| (s, Vec::with_capacity(size)))
            .collect();
        for ck in counted {
            let packed = ck.kmer.packed();
            let key = packed & k1_mask;
            let record = (key << 2) | (packed >> k1_shift);
            jobs[shard_of_packed(key, shard_count)]
                .1
                .push((record, ck.count as u64));
        }

        // Shard-parallel build: each shard radix-sorts its received records and
        // runs the single-graph merge-scan over its two streams.
        let workers = threads.clamp(1, shard_count);
        let per_worker = shard_count.div_ceil(workers);
        let mut parts: Vec<Option<ShardParts>> = (0..shard_count).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for chunk in jobs.chunks_mut(per_worker) {
                let suffix_streams = &suffix_streams;
                handles.push(scope.spawn(move || {
                    let mut built = Vec::with_capacity(chunk.len());
                    for (shard, records) in chunk.iter_mut() {
                        radix_sort_pairs(records, k1_shift + 2);
                        built.push((
                            *shard,
                            build_segment(records, &suffix_streams[*shard], k1_len),
                        ));
                    }
                    built
                }));
            }
            for handle in handles {
                for (shard, part) in handle.join().expect("shard build worker panicked") {
                    parts[shard] = Some(part);
                }
            }
        });

        let mut shards = Vec::with_capacity(shard_count);
        for part in parts {
            let (keys, slots) = part.expect("every shard was built");
            shards.push(PakGraph::from_parts(keys, slots, k));
        }
        ShardedGraph::from_shards(shards, k)
    }

    /// Wraps an already-built single graph as a one-shard sharded graph (the
    /// identity mapping). Used by the `shard_count == 1` fast path and the
    /// overhead benchmark, which runs the full sharded engine over one shard.
    pub fn from_single(graph: PakGraph) -> ShardedGraph {
        let n = graph.slot_count();
        let k = graph.k();
        debug_assert!(n <= u32::MAX as usize);
        ShardedGraph {
            global_keys: graph.slot_keys().to_vec(),
            route: (0..n as u32).map(|local| (0, local)).collect(),
            global_slots: vec![(0..n as u32).collect()],
            shards: vec![graph],
            k,
        }
    }

    /// Assembles the global rank mapping over per-shard graphs (ascending
    /// merge of the per-shard key sequences).
    fn from_shards(shards: Vec<PakGraph>, k: usize) -> ShardedGraph {
        let shard_count = shards.len();
        let total: usize = shards.iter().map(PakGraph::slot_count).sum();
        debug_assert!(total <= u32::MAX as usize);
        if shard_count > total {
            eprintln!(
                "warning: {shard_count} shards over {total} MacroNodes — \
                 {unowned} shard(s) own zero k-mers and their channels idle",
                unowned = shard_count - total
            );
        }
        // Merge the per-shard key sequences into the global ascending order by
        // radix-sorting (key, shard/local) pairs — keys are globally unique, so
        // this is a total order and runs in O(total) passes.
        let key_bits = (2 * (k - 1)) as u32;
        let mut pairs: Vec<(u64, u64)> = Vec::with_capacity(total);
        for (shard, graph) in shards.iter().enumerate() {
            for (local, &key) in graph.slot_keys().iter().enumerate() {
                pairs.push((key, ((shard as u64) << 32) | local as u64));
            }
        }
        radix_sort_pairs(&mut pairs, key_bits);
        let mut global_keys = Vec::with_capacity(total);
        let mut route = Vec::with_capacity(total);
        let mut global_slots: Vec<Vec<u32>> = shards
            .iter()
            .map(|g| Vec::with_capacity(g.slot_count()))
            .collect();
        for &(key, packed_route) in &pairs {
            let shard = (packed_route >> 32) as usize;
            let local = packed_route as u32;
            global_slots[shard].push(global_keys.len() as u32);
            route.push((shard as u32, local));
            global_keys.push(key);
        }
        debug_assert!(global_keys.windows(2).all(|w| w[0] < w[1]));
        ShardedGraph {
            shards,
            global_keys,
            route,
            global_slots,
            k,
        }
    }

    /// The k-mer length this graph was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The subgraph of shard `shard`.
    pub fn shard(&self, shard: usize) -> &PakGraph {
        &self.shards[shard]
    }

    /// Total number of global slots (alive + invalidated).
    pub fn global_slot_count(&self) -> usize {
        self.route.len()
    }

    /// The owner shard of global slot `slot`.
    #[inline]
    pub fn shard_of_global(&self, slot: usize) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        self.route[slot].0 as usize
    }

    /// Total alive MacroNodes across all shards.
    pub fn alive_count(&self) -> usize {
        self.shards.iter().map(PakGraph::alive_count).sum()
    }

    /// Alive MacroNodes per shard — the per-channel residency the hardware
    /// model reads as measured (not assumed) load.
    pub fn per_shard_alive(&self) -> Vec<usize> {
        self.shards.iter().map(PakGraph::alive_count).collect()
    }

    /// The alive node at global slot `slot`, if any.
    ///
    /// The one-shard fast paths here and below skip the route/ownership
    /// indirection when the mapping is the identity, keeping the sharded
    /// engine's single-shard overhead within the benchmark gate.
    #[inline]
    pub fn node_global(&self, slot: usize) -> Option<&MacroNode> {
        if self.shards.len() == 1 {
            return self.shards[0].node(slot);
        }
        let (shard, local) = self.route[slot];
        self.shards[shard as usize].node(local as usize)
    }

    /// Invalidates the node at global slot `slot` on its owner shard.
    pub fn invalidate_global(&mut self, slot: usize) -> Option<MacroNode> {
        if self.shards.len() == 1 {
            return self.shards[0].invalidate(slot);
        }
        let (shard, local) = self.route[slot];
        self.shards[shard as usize].invalidate(local as usize)
    }

    /// `true` if a node with this (k-1)-mer is alive — resolved on its owner
    /// shard, exactly as a PE would consult its channel's mapping table.
    #[inline]
    pub fn contains(&self, k1mer: &Kmer) -> bool {
        if self.shards.len() == 1 {
            return self.shards[0].contains(k1mer);
        }
        self.shards[shard_of_packed(k1mer.packed(), self.shards.len())].contains(k1mer)
    }

    /// The global slot of the alive node with this (k-1)-mer, if any.
    pub fn index_of_global(&self, k1mer: &Kmer) -> Option<usize> {
        let shard = shard_of_packed(k1mer.packed(), self.shards.len());
        let local = self.shards[shard].index_of(k1mer)?;
        Some(self.global_slots[shard][local] as usize)
    }

    /// Reassembles the single global graph (dead slots included), preserving
    /// the exact single-graph slot layout so downstream consumers — the walk,
    /// batch merging, the memory-trace layout — see an identical structure.
    pub fn into_global_graph(self) -> PakGraph {
        let ShardedGraph {
            shards,
            global_keys,
            route,
            k,
            ..
        } = self;
        let mut shard_slots: Vec<Vec<Option<MacroNode>>> =
            shards.into_iter().map(PakGraph::into_slots).collect();
        let mut slots = Vec::with_capacity(route.len());
        for &(shard, local) in &route {
            slots.push(shard_slots[shard as usize][local as usize].take());
        }
        PakGraph::from_parts(global_keys, slots, k)
    }
}

/// Mailbox traffic of one compaction iteration (the per-iteration exchange).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MailboxIterationStats {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// TransferNodes routed through the mailbox.
    pub transfers: usize,
    /// TransferNodes whose destination shard differed from their source shard.
    pub cross_shard_transfers: usize,
    /// Total payload bytes routed.
    pub bytes: u64,
    /// Payload bytes that crossed shards (the inter-channel traffic).
    pub cross_shard_bytes: u64,
}

/// One mailbox flush: a batch of TransferNodes from one source shard's local
/// iteration, delivered to one destination shard.
///
/// Under the async schedule each record is an *actual* flush (published as
/// soon as the source's P3 finished that local iteration); under lock-step the
/// barriered exchange is decomposed into one record per (iteration, src, dst)
/// cell with traffic. Either way the per-flush bytes sum to the whole-run
/// route matrix, so the network model charges identical traffic from both
/// engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MailboxFlushStats {
    /// Source shard.
    pub src: usize,
    /// Destination shard (equal to `src` for shard-local deliveries).
    pub dst: usize,
    /// The source shard's local iteration that produced this flush.
    pub src_iteration: usize,
    /// TransferNodes carried.
    pub transfers: u64,
    /// Payload bytes carried.
    pub bytes: u64,
}

/// Measured per-shard load and inter-shard traffic of one sharded run — the
/// telemetry the `nmphw` channel model and the PANDA cost model consume instead
/// of assuming uniform work and uniform traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardingTelemetry {
    /// Number of shards the run executed with.
    pub shard_count: usize,
    /// Alive MacroNodes per shard before compaction.
    pub initial_alive_per_shard: Vec<usize>,
    /// Alive MacroNodes per shard after compaction.
    pub final_alive_per_shard: Vec<usize>,
    /// P1 invalidation predicates evaluated per shard across the run — the
    /// per-channel compute load.
    pub checked_per_shard: Vec<u64>,
    /// Per-iteration mailbox traffic.
    pub mailbox: Vec<MailboxIterationStats>,
    /// Whole-run shard→shard payload bytes, flattened
    /// `source * shard_count + destination`.
    pub route_bytes: Vec<u64>,
    /// Per-flush mailbox ledger, sorted by (src_iteration, src, dst). Total
    /// bytes equal the `route_bytes` matrix total under both schedules.
    pub flushes: Vec<MailboxFlushStats>,
    /// Wall nanoseconds of each completed local round, per shard — recorded by
    /// the async engine only (empty vectors under lock-step, whose telemetry
    /// stays deterministic and comparable across thread counts).
    pub round_nanos: Vec<Vec<u64>>,
}

impl ShardingTelemetry {
    /// Per-shard load imbalance: max over mean of the per-shard P1 work
    /// (falls back to the initial residency when no predicate ran). 1.0 means
    /// perfectly balanced; the hardware model multiplies its
    /// perfectly-parallel critical path by this factor.
    ///
    /// The mean runs over *working* shards only, matching the channel model's
    /// convention (`nmphw::ChannelLoadStats::imbalance` excludes idle
    /// channels): a shard that owns zero k-mers reflects over-partitioning,
    /// not skew among the lanes that actually execute in lock-step.
    pub fn load_imbalance(&self) -> f64 {
        let ratio = |counts: &[u64]| -> Option<f64> {
            let working: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
            let total: u64 = working.iter().sum();
            if working.is_empty() || total == 0 {
                return None;
            }
            let mean = total as f64 / working.len() as f64;
            let max = working.iter().copied().max().unwrap_or(0) as f64;
            Some(max / mean)
        };
        let residency: Vec<u64> = self
            .initial_alive_per_shard
            .iter()
            .map(|&n| n as u64)
            .collect();
        ratio(&self.checked_per_shard)
            .or_else(|| ratio(&residency))
            .unwrap_or(1.0)
    }

    /// Total TransferNodes routed across the run.
    pub fn total_transfers(&self) -> usize {
        self.mailbox.iter().map(|m| m.transfers).sum()
    }

    /// Total mailbox payload bytes across the run.
    pub fn total_mailbox_bytes(&self) -> u64 {
        self.mailbox.iter().map(|m| m.bytes).sum()
    }

    /// Total payload bytes that crossed shards across the run.
    pub fn total_cross_shard_bytes(&self) -> u64 {
        self.mailbox.iter().map(|m| m.cross_shard_bytes).sum()
    }

    /// Fraction of mailbox bytes that crossed shards (0 when nothing moved).
    pub fn cross_shard_fraction(&self) -> f64 {
        let total = self.total_mailbox_bytes();
        if total == 0 {
            return 0.0;
        }
        self.total_cross_shard_bytes() as f64 / total as f64
    }

    /// Bytes routed from shard `src` to shard `dst` across the run.
    pub fn routed_bytes(&self, src: usize, dst: usize) -> u64 {
        self.route_bytes[src * self.shard_count + dst]
    }

    /// Total payload bytes across the per-flush ledger. Equal to the
    /// route-matrix total under both schedules (asserted by the equivalence
    /// tests), so network models may charge either view.
    pub fn total_flush_bytes(&self) -> u64 {
        self.flushes.iter().map(|f| f.bytes).sum()
    }

    /// Total payload bytes in the shard×shard route matrix.
    pub fn total_route_bytes(&self) -> u64 {
        self.route_bytes.iter().sum()
    }

    /// The barriered critical path implied by the measured per-shard round
    /// times: with a lock-step barrier every round costs as much as its
    /// slowest shard (`Σ_r max_s t[s][r]`). Zero when round times were not
    /// recorded (lock-step runs do not measure them).
    pub fn lockstep_critical_path_nanos(&self) -> u64 {
        let rounds = self.round_nanos.iter().map(Vec::len).max().unwrap_or(0);
        (0..rounds)
            .map(|round| {
                self.round_nanos
                    .iter()
                    .filter_map(|shard| shard.get(round).copied())
                    .max()
                    .unwrap_or(0)
            })
            .sum()
    }

    /// The asynchronous critical path over the same measured rounds: without
    /// the barrier no shard waits for a straggler, so the critical path is the
    /// busiest shard's total work (`max_s Σ_r t[s][r]`). By construction this
    /// never exceeds [`ShardingTelemetry::lockstep_critical_path_nanos`].
    pub fn async_critical_path_nanos(&self) -> u64 {
        self.round_nanos
            .iter()
            .map(|shard| shard.iter().sum())
            .max()
            .unwrap_or(0)
    }
}

/// Runs Iterative Compaction over the sharded graph: P1/P2/P3 execute
/// per-shard, cross-shard TransferNodes travel through a batched slot-ordered
/// [`ShardMailbox`] exchanged once per iteration, and the outcome — statistics,
/// trace, compacted nodes — is **bit-identical** to [`crate::compaction::compact`]
/// on the equivalent single graph, at every shard count, thread count, and
/// [`CompactionMode`].
pub fn compact_sharded(
    sharded: &mut ShardedGraph,
    config: &PakmanConfig,
) -> (CompactionOutcome, ShardingTelemetry) {
    compact_sharded_controlled(sharded, config, &RunControl::default())
        .expect("null control never cancels")
}

/// [`compact_sharded`] under a [`RunControl`]: the cancellation token is polled
/// at the top of every iteration (before the mailbox exchange, so no shard ever
/// sees a half-delivered iteration) and the observer gets one
/// `compaction_iteration` callback per iteration. Bit-identical to
/// [`compact_sharded`] under the default control.
///
/// # Errors
///
/// Returns [`PakmanError::Cancelled`] if the control's token fires between
/// iterations; the sharded graph is left mid-compaction and should be dropped.
pub fn compact_sharded_controlled(
    sharded: &mut ShardedGraph,
    config: &PakmanConfig,
    control: &RunControl<'_>,
) -> Result<(CompactionOutcome, ShardingTelemetry), PakmanError> {
    // The async engine takes over for multi-shard runs on the async schedule.
    // Trace recording forces lock-step: the trace format is defined in global
    // barrier iterations, which the async engine does not have.
    if config.shard_schedule == ShardSchedule::Async
        && sharded.shard_count() > 1
        && !config.record_trace
    {
        return compact_sharded_async(sharded, config, control);
    }
    let shard_count = sharded.shard_count();
    let slot_count = sharded.global_slot_count();
    let initial_nodes = sharded.alive_count();
    let frontier = config.compaction_mode == CompactionMode::Frontier;

    let mut trace = config.record_trace.then(|| {
        let mut sizes = vec![0usize; slot_count];
        for (slot, size) in sizes.iter_mut().enumerate() {
            if let Some(node) = sharded.node_global(slot) {
                *size = node.size_bytes();
            }
        }
        CompactionTrace::new(slot_count, sizes)
    });

    let mut stats = CompactionStats {
        initial_nodes,
        final_nodes: initial_nodes,
        ..CompactionStats::default()
    };
    let mut profile = CompactionProfile::default();
    let mut telemetry = ShardingTelemetry {
        shard_count,
        initial_alive_per_shard: sharded.per_shard_alive(),
        final_alive_per_shard: Vec::new(),
        checked_per_shard: vec![0; shard_count],
        mailbox: Vec::new(),
        route_bytes: vec![0; shard_count * shard_count],
        flushes: Vec::new(),
        round_nanos: Vec::new(),
    };

    // Global-slot-indexed census state, mirroring the single-graph scratch.
    let mut alive_list: Vec<u32> = (0..slot_count as u32)
        .filter(|&slot| sharded.node_global(slot as usize).is_some())
        .collect();
    let mut alive = initial_nodes;
    let mut cached_size = vec![0usize; slot_count];
    let mut dirty = vec![false; slot_count];
    let mut dirty_list: Vec<usize> = Vec::new();
    let mut running_hist = SizeHistogram::new();
    let mut census_primed = false;

    let mut mailbox = ShardMailbox::new(shard_count);
    let mut recheck: Vec<usize> = Vec::new();
    let mut check_results: Vec<NodeCheck> = Vec::new();
    let mut invalidated: Vec<usize> = Vec::new();
    let mut transfers: Vec<(usize, TransferNode)> = Vec::new();
    let mut resolved: Vec<Option<usize>> = Vec::new();
    let mut matched: Vec<bool> = Vec::new();
    let mut touched = vec![false; slot_count];
    let mut touched_order: Vec<usize> = Vec::new();
    let mut checks: Vec<NodeCheck> = Vec::new();

    for iteration in 0..config.max_compaction_iterations {
        control.check("sharded compaction")?;
        let alive_before = alive;
        control.compaction_iteration(iteration, alive_before);
        if alive_before <= config.compaction_node_threshold {
            stats.converged = true;
            break;
        }

        // ---- Stage P1: per-shard invalidation checks over the global
        // frontier (read-only; neighbour lookups route to the owner shard) ----
        let p1_start = Instant::now();
        recheck.clear();
        if !frontier || iteration == 0 {
            recheck.extend(alive_list.iter().map(|&slot| slot as usize));
        } else {
            dirty_list.sort_unstable();
            for &slot in &dirty_list {
                dirty[slot] = false;
                recheck.push(slot);
            }
            dirty_list.clear();
        }
        run_sharded_checks(sharded, &recheck, config.threads, &mut check_results);
        for &slot in &recheck {
            telemetry.checked_per_shard[sharded.shard_of_global(slot)] += 1;
        }

        fold_census(
            &check_results,
            census_primed,
            &mut running_hist,
            &mut cached_size,
            &mut invalidated,
        );
        census_primed = true;
        let histogram = running_hist.clone();

        if trace.is_some() {
            assemble_trace_checks(
                &alive_list,
                &recheck,
                &check_results,
                &cached_size,
                &mut checks,
            );
        }
        let p1 = p1_start.elapsed();
        profile.iterations.push(IterationProfile {
            iteration,
            p1,
            p2: Duration::ZERO,
            p3: Duration::ZERO,
            checked_nodes: recheck.len(),
            alive_nodes: alive_before,
        });

        if invalidated.is_empty() {
            stats.iterations.push(IterationStats {
                iteration,
                alive_before,
                invalidated: 0,
                transfers: 0,
                unmatched_transfers: 0,
                histogram,
            });
            if let Some(trace) = trace.as_mut() {
                trace.iterations.push(IterationTrace {
                    checks: std::mem::take(&mut checks),
                    transfers: Vec::new(),
                    updates: Vec::new(),
                });
            }
            stats.converged = true;
            break;
        }

        // ---- Stage P2: per-shard TransferNode extraction (canonical
        // global-slot-major stream), then invalidation on the owner shards ----
        let p2_start = Instant::now();
        extract_sharded_transfers(sharded, &invalidated, config.threads, &mut transfers);
        for &slot in &invalidated {
            sharded.invalidate_global(slot);
            running_hist.unrecord(cached_size[slot]);
        }
        remove_sorted(&mut alive_list, &invalidated);
        alive -= invalidated.len();
        let p2 = p2_start.elapsed();

        // ---- The inter-shard mailbox: one batched exchange per iteration.
        // Stable partition of the canonical stream → slot-ordered delivery.
        let p3_start = Instant::now();
        mailbox.route(&transfers, |i| sharded.shard_of_global(transfers[i].0));
        telemetry.mailbox.push(MailboxIterationStats {
            iteration,
            transfers: mailbox.transfer_count(),
            cross_shard_transfers: mailbox.cross_shard_transfer_count(),
            bytes: mailbox.total_bytes(),
            cross_shard_bytes: mailbox.cross_shard_bytes(),
        });
        for (cell, routed) in telemetry.route_bytes.iter_mut().zip(mailbox.route_bytes()) {
            *cell += routed;
        }
        // Decompose the barriered exchange into per-(src, dst) flush records
        // so lock-step and async expose the same per-flush ledger (already in
        // (iteration, src, dst) order by construction).
        for src in 0..shard_count {
            for dst in 0..shard_count {
                let routed = mailbox.routed_transfers(src, dst);
                if routed > 0 {
                    telemetry.flushes.push(MailboxFlushStats {
                        src,
                        dst,
                        src_iteration: iteration,
                        transfers: routed,
                        bytes: mailbox.routed_bytes(src, dst),
                    });
                }
            }
        }

        // ---- Stage P3: every destination shard drains its inbox in mailbox
        // (= canonical per-destination) order, resolving against its own rank
        // index and applying locally — shards in parallel, no locks.
        resolved.clear();
        resolved.resize(transfers.len(), None);
        matched.clear();
        matched.resize(transfers.len(), false);
        apply_mailbox(
            sharded,
            &mailbox,
            &transfers,
            config.threads,
            &mut resolved,
            &mut matched,
        );

        // ---- Canonical fold over the global stream: unmatched census,
        // first-touch update order, trace events, and the next frontier —
        // the exact fold the single-graph engine runs ([`fold_transfers`]).
        let fold = fold_transfers(
            &transfers,
            &resolved,
            &matched,
            frontier,
            trace.is_some(),
            &mut touched,
            &mut touched_order,
            &mut dirty,
            &mut dirty_list,
        );
        let unmatched = fold.unmatched;
        let transfer_events = fold.events;

        let updates: Vec<UpdateEvent> = if trace.is_some() {
            touched_order
                .iter()
                .map(|&dest_slot| UpdateEvent {
                    dest_slot,
                    size_bytes: sharded
                        .node_global(dest_slot)
                        .map(MacroNode::size_bytes)
                        .unwrap_or(0),
                })
                .collect()
        } else {
            Vec::new()
        };
        let p3 = p3_start.elapsed();
        if let Some(entry) = profile.iterations.last_mut() {
            entry.p2 = p2;
            entry.p3 = p3;
        }

        stats.total_transfers += transfers.len();
        stats.iterations.push(IterationStats {
            iteration,
            alive_before,
            invalidated: invalidated.len(),
            transfers: transfers.len(),
            unmatched_transfers: unmatched,
            histogram,
        });
        if let Some(trace) = trace.as_mut() {
            trace.iterations.push(IterationTrace {
                checks: std::mem::take(&mut checks),
                transfers: transfer_events,
                updates,
            });
        }
    }

    stats.final_nodes = sharded.alive_count();
    if stats.final_nodes <= config.compaction_node_threshold {
        stats.converged = true;
    }
    telemetry.final_alive_per_shard = sharded.per_shard_alive();
    Ok((
        CompactionOutcome {
            stats,
            trace,
            profile,
        },
        telemetry,
    ))
}

/// Evaluates the invalidation predicate for the global `slots` (ascending) on
/// their owner shards, writing position-aligned results — the sharded
/// equivalent of the single-graph `run_checks_into`.
fn run_sharded_checks(
    sharded: &ShardedGraph,
    slots: &[usize],
    threads: usize,
    results: &mut Vec<NodeCheck>,
) {
    results.clear();
    results.resize(
        slots.len(),
        NodeCheck {
            slot: 0,
            size_bytes: 0,
            invalidated: false,
        },
    );
    let check_one = |slot: usize| {
        let node = sharded.node_global(slot).expect("slot is alive");
        NodeCheck {
            slot,
            size_bytes: node.size_bytes(),
            invalidated: is_invalidation_target_with(|k1mer| sharded.contains(k1mer), node),
        }
    };
    let threads = threads.max(1).min(slots.len().max(1));
    if threads <= 1 || slots.len() < 64 {
        for (out, &slot) in results.iter_mut().zip(slots) {
            *out = check_one(slot);
        }
        return;
    }
    let chunk = slots.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (out_chunk, slot_chunk) in results.chunks_mut(chunk).zip(slots.chunks(chunk)) {
            let check_one = &check_one;
            scope.spawn(move || {
                for (out, &slot) in out_chunk.iter_mut().zip(slot_chunk) {
                    *out = check_one(slot);
                }
            });
        }
    });
}

/// Extracts the TransferNodes of every invalidated global slot (ascending)
/// into the canonical global-slot-major stream, parallel over contiguous
/// chunks merged in order.
fn extract_sharded_transfers(
    sharded: &ShardedGraph,
    invalidated: &[usize],
    threads: usize,
    out: &mut Vec<(usize, TransferNode)>,
) {
    out.clear();
    let extract_one = |slot: usize, buffer: &mut Vec<(usize, TransferNode)>| {
        let node = sharded
            .node_global(slot)
            .expect("invalidated slot was alive");
        for path in node.paths() {
            if let Some((pred, succ)) = TransferNode::extract_pair(node, path) {
                buffer.push((slot, pred));
                buffer.push((slot, succ));
            }
        }
    };
    let threads = threads.max(1).min(invalidated.len().max(1));
    if threads <= 1 || invalidated.len() < 32 {
        for &slot in invalidated {
            extract_one(slot, out);
        }
        return;
    }
    let chunk = invalidated.len().div_ceil(threads);
    let mut buffers: Vec<Vec<(usize, TransferNode)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for slot_chunk in invalidated.chunks(chunk) {
            let extract_one = &extract_one;
            handles.push(scope.spawn(move || {
                let mut buffer = Vec::with_capacity(slot_chunk.len() * 2);
                for &slot in slot_chunk {
                    extract_one(slot, &mut buffer);
                }
                buffer
            }));
        }
        for handle in handles {
            buffers.push(handle.join().expect("extraction worker panicked"));
        }
    });
    for mut buffer in buffers {
        out.append(&mut buffer);
    }
}

/// Stage P3 proper: each destination shard applies its inbox in mailbox order
/// against its own subgraph (shard-parallel when threads allow), scattering the
/// resolved global destinations and matched flags back into canonical-stream
/// positions.
fn apply_mailbox(
    sharded: &mut ShardedGraph,
    mailbox: &ShardMailbox,
    transfers: &[(usize, TransferNode)],
    threads: usize,
    resolved: &mut [Option<usize>],
    matched: &mut [bool],
) {
    let apply_inbox = |shard_graph: &mut PakGraph, globals: &[u32], inbox: &[u32]| {
        let mut out: Vec<(Option<usize>, bool)> = Vec::with_capacity(inbox.len());
        for &index in inbox {
            let transfer = &transfers[index as usize].1;
            match shard_graph.index_of(&transfer.destination) {
                Some(local) => {
                    let node = shard_graph.node_mut(local).expect("destination is alive");
                    let did_match = apply_transfer(node, transfer);
                    out.push((Some(globals[local] as usize), did_match));
                }
                None => out.push((None, false)),
            }
        }
        out
    };

    let scatter = |inbox: &[u32],
                   out: Vec<(Option<usize>, bool)>,
                   resolved: &mut [Option<usize>],
                   matched: &mut [bool]| {
        for (&index, (dest, did_match)) in inbox.iter().zip(out) {
            resolved[index as usize] = dest;
            matched[index as usize] = did_match;
        }
    };

    if threads <= 1 || sharded.shards.len() == 1 {
        for (shard, shard_graph) in sharded.shards.iter_mut().enumerate() {
            let inbox = mailbox.inbox(shard);
            if inbox.is_empty() {
                continue;
            }
            let out = apply_inbox(shard_graph, &sharded.global_slots[shard], inbox);
            scatter(inbox, out, resolved, matched);
        }
        return;
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for ((shard, shard_graph), globals) in sharded
            .shards
            .iter_mut()
            .enumerate()
            .zip(&sharded.global_slots)
        {
            let inbox = mailbox.inbox(shard);
            if inbox.is_empty() {
                continue;
            }
            let apply_inbox = &apply_inbox;
            handles.push((
                inbox,
                scope.spawn(move || apply_inbox(shard_graph, globals, inbox)),
            ));
        }
        for (inbox, handle) in handles {
            let out = handle.join().expect("shard P3 worker panicked");
            scatter(inbox, out, resolved, matched);
        }
    });
}

// ---------------------------------------------------------------------------
// The asynchronously scheduled engine ([`ShardSchedule::Async`]).
// ---------------------------------------------------------------------------

/// Maximum unconsumed flushes one (src, dst) lane may hold before the sender
/// backs off — the bounded in-flight window that keeps a fast shard from
/// flooding a straggler's inbox. Later flushes on a blocked lane wait behind
/// it (per-lane FIFO), while flushes to other destinations proceed.
const ASYNC_LANE_DEPTH: usize = 4;

/// One eagerly delivered mailbox flush between two shards.
struct AsyncFlush {
    src: usize,
    dst: usize,
    /// The global wave the sender extracted this flush in; the receiver folds
    /// it into the canonical apply stream at the start of wave
    /// `src_iteration + 1`.
    src_iteration: usize,
    /// `(global source slot, transfer)`, ascending by source slot — the
    /// sender extracts in ascending slot order, so a stable sort over all of a
    /// wave's flushes reconstructs the canonical global stream exactly.
    transfers: Vec<(u32, TransferNode)>,
    bytes: u64,
}

/// Mutable per-shard compaction state. The run queue admits each shard at most
/// once, so the mutex is held by at most one worker at a time.
struct AsyncShardState<'g> {
    graph: &'g mut PakGraph,
    /// Local slot → global slot.
    globals: &'g [u32],
    /// The next wave this shard executes (== waves completed so far).
    wave: usize,
    /// This shard executed a wave whose completion it has not reported yet
    /// (outbound flushes are still back-pressured on a full lane).
    completion_pending: bool,
    /// Invalidations of the yet-unreported wave, fed into the global
    /// fixed-point check on completion.
    unreported_deaths: usize,
    /// Alive local slots, ascending.
    alive_list: Vec<u32>,
    dirty: Vec<bool>,
    dirty_list: Vec<u32>,
    /// Drained-but-unapplied inbound flushes, wave-tagged. Also carries this
    /// shard's own self-lane flushes (never deposited, never charged).
    inbuf: Vec<AsyncFlush>,
    /// Outbound flushes not yet deposited (back-pressured lanes retry here;
    /// FIFO order per lane is preserved).
    pending_out: VecDeque<AsyncFlush>,
    /// Wall nanoseconds of each executed wave (one entry per wave).
    round_nanos: Vec<u64>,
    checked: u64,
    transfers_routed: u64,
    /// This shard's row of the route matrix (bytes per destination).
    route_bytes: Vec<u64>,
    flushes: Vec<MailboxFlushStats>,
}

/// The shard run queue plus the wave ledger. A shard is `active` from enqueue
/// until its round finishes, so duplicate enqueues collapse; the wave fields
/// implement the decentralized completion count that replaced the thread
/// barrier.
struct AsyncQueue {
    runnable: VecDeque<usize>,
    active: Vec<bool>,
    running: usize,
    done: bool,
    /// Shards that have not yet completed the current wave.
    wave_remaining: usize,
    /// Invalidations reported for the current wave so far.
    wave_deaths: usize,
    /// The current wave is the apply-only epilogue after a threshold or
    /// iteration-cap stop (lock-step applies its last mailbox before exiting,
    /// so the async engine must land those flushes too).
    finishing: bool,
    converged: bool,
}

/// Everything the async workers share.
struct AsyncEngine<'g> {
    states: Vec<Mutex<AsyncShardState<'g>>>,
    inboxes: Vec<Mutex<Vec<AsyncFlush>>>,
    /// Versioned global-slot aliveness — the concurrent analogue of
    /// [`ShardedGraph::contains`]. The stored value is `death wave + 1`
    /// (`usize::MAX` = never died, `0` = never alive), so a wave-`r` predicate
    /// reads its wave-start snapshot as `value > r`: a death published by a
    /// concurrent wave-`r` peer is still alive for wave-`r` checks, exactly as
    /// under the barrier, and dead from wave `r + 1` on.
    death_wave: Vec<AtomicUsize>,
    /// Packed (k-1)-mer of every global slot, ascending.
    global_keys: &'g [u64],
    alive: AtomicUsize,
    /// Mirror of the queue's current wave, readable without the queue lock.
    global_wave: AtomicUsize,
    /// Mirror of [`AsyncQueue::finishing`].
    finishing: AtomicBool,
    queue: Mutex<AsyncQueue>,
    queue_cv: Condvar,
    failure: Mutex<Option<PakmanError>>,
    shard_count: usize,
    frontier: bool,
    threshold: usize,
    max_iterations: usize,
}

/// [`compact_sharded_controlled`] without the thread barrier: a worker pool of
/// `min(threads, shards)` drains a run queue of shards, each pop running one
/// *local* round (drain inbox → apply the previous wave's canonical stream →
/// P1 over the local frontier → P2 extraction → publish deaths → P3 route,
/// with remote lanes flushed eagerly and shard-local lanes folded back into
/// the same canonical stream). Wave completion is counted, not joined: the
/// last shard to finish a wave re-arms every shard for the next one, detects
/// the global fixed point, applies the node threshold against the global
/// census, and enforces the iteration cap — so the run is bit-identical to
/// lock-step in everything but scheduling telemetry (per-shard `round_nanos`
/// are recorded; per-iteration stats, the profile and the trace are not).
fn compact_sharded_async(
    sharded: &mut ShardedGraph,
    config: &PakmanConfig,
    control: &RunControl<'_>,
) -> Result<(CompactionOutcome, ShardingTelemetry), PakmanError> {
    let shard_count = sharded.shard_count();
    let slot_count = sharded.global_slot_count();
    let initial_nodes = sharded.alive_count();

    let mut stats = CompactionStats {
        initial_nodes,
        final_nodes: initial_nodes,
        ..CompactionStats::default()
    };
    let mut telemetry = ShardingTelemetry {
        shard_count,
        initial_alive_per_shard: sharded.per_shard_alive(),
        final_alive_per_shard: Vec::new(),
        checked_per_shard: vec![0; shard_count],
        mailbox: Vec::new(),
        route_bytes: vec![0; shard_count * shard_count],
        flushes: Vec::new(),
        round_nanos: vec![Vec::new(); shard_count],
    };

    control.check("async sharded compaction")?;
    control.compaction_iteration(0, initial_nodes);
    if initial_nodes <= config.compaction_node_threshold {
        stats.converged = true;
        telemetry.final_alive_per_shard = sharded.per_shard_alive();
        return Ok((
            CompactionOutcome {
                stats,
                trace: None,
                profile: CompactionProfile::default(),
            },
            telemetry,
        ));
    }

    // In-flight flush payloads are charged to this ledger on deposit and
    // released when applied (or by the post-run drain), so a cancelled run
    // always leaves the ledger at zero.
    let ledger = control.adopt(MemoryBudget::unbounded());

    let death_wave: Vec<AtomicUsize> = (0..slot_count)
        .map(|slot| {
            AtomicUsize::new(if sharded.node_global(slot).is_some() {
                usize::MAX
            } else {
                0
            })
        })
        .collect();
    let frontier = config.compaction_mode == CompactionMode::Frontier;
    let workers = config.threads.max(1).min(shard_count);

    let ShardedGraph {
        shards,
        global_keys,
        global_slots,
        ..
    } = sharded;
    let global_keys: &[u64] = global_keys;

    let states: Vec<Mutex<AsyncShardState<'_>>> = shards
        .iter_mut()
        .zip(global_slots.iter())
        .map(|(graph, globals)| {
            let alive_list: Vec<u32> = (0..graph.slot_count() as u32)
                .filter(|&local| graph.node(local as usize).is_some())
                .collect();
            let slots = graph.slot_count();
            Mutex::new(AsyncShardState {
                graph,
                globals,
                wave: 0,
                completion_pending: false,
                unreported_deaths: 0,
                alive_list,
                dirty: vec![false; slots],
                dirty_list: Vec::new(),
                inbuf: Vec::new(),
                pending_out: VecDeque::new(),
                round_nanos: Vec::new(),
                checked: 0,
                transfers_routed: 0,
                route_bytes: vec![0; shard_count],
                flushes: Vec::new(),
            })
        })
        .collect();

    let engine = AsyncEngine {
        states,
        inboxes: (0..shard_count).map(|_| Mutex::new(Vec::new())).collect(),
        death_wave,
        global_keys,
        alive: AtomicUsize::new(initial_nodes),
        global_wave: AtomicUsize::new(0),
        finishing: AtomicBool::new(false),
        queue: Mutex::new(AsyncQueue {
            runnable: (0..shard_count).collect(),
            active: vec![true; shard_count],
            running: 0,
            done: false,
            wave_remaining: shard_count,
            wave_deaths: 0,
            finishing: false,
            converged: false,
        }),
        queue_cv: Condvar::new(),
        failure: Mutex::new(None),
        shard_count,
        frontier,
        threshold: config.compaction_node_threshold,
        max_iterations: config.max_compaction_iterations,
    };

    if workers <= 1 {
        // Single-worker runs stay on the caller thread: the queue drains FIFO,
        // so scheduling is fully deterministic.
        async_worker(&engine, control, &ledger);
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let engine = &engine;
                let ledger = &ledger;
                scope.spawn(move || async_worker(engine, control, ledger));
            }
        });
    }

    let AsyncEngine {
        states,
        inboxes,
        queue,
        failure,
        ..
    } = engine;

    // Drain whatever is still parked: a flush is charged from deposit until it
    // is applied, so release everything sitting in an inbox or a drained-but-
    // unapplied buffer (a cancelled run must leave the ledger at zero; a
    // converged run has applied everything and this is a no-op).
    for inbox in &inboxes {
        let mut inbox = inbox.lock().expect("inbox poisoned");
        for flush in inbox.drain(..) {
            ledger.release(flush.bytes);
        }
    }
    if let Some(err) = failure.lock().expect("failure slot poisoned").take() {
        for (shard, state) in states.iter().enumerate() {
            let state = state.lock().expect("shard state poisoned");
            for flush in &state.inbuf {
                if flush.src != shard {
                    ledger.release(flush.bytes);
                }
            }
        }
        return Err(err);
    }

    let mut flushes: Vec<MailboxFlushStats> = Vec::new();
    let mut total_transfers = 0u64;
    let mut final_nodes = 0usize;
    for (src, state) in states.into_iter().enumerate() {
        let state = state.into_inner().expect("shard state poisoned");
        debug_assert!(state.inbuf.is_empty(), "converged run applied every flush");
        telemetry.checked_per_shard[src] = state.checked;
        for (dst, &bytes) in state.route_bytes.iter().enumerate() {
            telemetry.route_bytes[src * shard_count + dst] = bytes;
        }
        total_transfers += state.transfers_routed;
        flushes.extend(state.flushes);
        telemetry.round_nanos[src] = state.round_nanos;
        let alive = state.graph.alive_count();
        final_nodes += alive;
        telemetry.final_alive_per_shard.push(alive);
    }
    // Waves are global iterations, so this reproduces the lock-step flush
    // ledger exactly — same tags, same lanes, same order.
    flushes.sort_by_key(|f| (f.src_iteration, f.src, f.dst));
    let mut mailbox_stats: Vec<MailboxIterationStats> = Vec::new();
    for flush in &flushes {
        if mailbox_stats.last().map(|m| m.iteration) != Some(flush.src_iteration) {
            mailbox_stats.push(MailboxIterationStats {
                iteration: flush.src_iteration,
                transfers: 0,
                cross_shard_transfers: 0,
                bytes: 0,
                cross_shard_bytes: 0,
            });
        }
        let entry = mailbox_stats.last_mut().expect("entry just pushed");
        entry.transfers += flush.transfers as usize;
        entry.bytes += flush.bytes;
        if flush.src != flush.dst {
            entry.cross_shard_transfers += flush.transfers as usize;
            entry.cross_shard_bytes += flush.bytes;
        }
    }
    telemetry.flushes = flushes;
    telemetry.mailbox = mailbox_stats;
    stats.total_transfers = total_transfers as usize;
    stats.final_nodes = final_nodes;
    stats.converged = queue.into_inner().expect("queue poisoned").converged
        || final_nodes <= config.compaction_node_threshold;
    Ok((
        CompactionOutcome {
            stats,
            trace: None,
            profile: CompactionProfile::default(),
        },
        telemetry,
    ))
}

/// Worker main loop: pop a runnable shard, run one round, decide whether the
/// shard needs to run again. On error the first failure is recorded and the
/// whole pool shuts down.
fn async_worker(engine: &AsyncEngine<'_>, control: &RunControl<'_>, ledger: &MemoryBudget) {
    while let Some(shard) = async_pop(engine) {
        match async_round(engine, shard, control, ledger) {
            Ok(progress) => {
                async_finish(engine, shard);
                if !progress {
                    // Pure retry round (e.g. a back-pressured lane): let the
                    // destination's worker run before spinning again.
                    std::thread::yield_now();
                }
            }
            Err(err) => {
                engine
                    .failure
                    .lock()
                    .expect("failure slot poisoned")
                    .get_or_insert(err);
                let mut queue = engine.queue.lock().expect("queue poisoned");
                queue.done = true;
                queue.running -= 1;
                drop(queue);
                engine.queue_cv.notify_all();
                break;
            }
        }
    }
}

/// Pops the next runnable shard, blocking while work may still appear.
/// Returns `None` once the run is done. Every wave completion either refills
/// the queue or sets `done`, and a blocked sender re-enqueues itself, so an
/// idle pool over an empty queue can only mean the run is over.
fn async_pop(engine: &AsyncEngine<'_>) -> Option<usize> {
    let mut queue = engine.queue.lock().expect("queue poisoned");
    loop {
        if queue.done {
            return None;
        }
        if let Some(shard) = queue.runnable.pop_front() {
            queue.running += 1;
            return Some(shard);
        }
        if queue.running == 0 {
            debug_assert!(false, "async run queue stalled before the run ended");
            queue.done = true;
            engine.queue_cv.notify_all();
            return None;
        }
        queue = engine.queue_cv.wait(queue).expect("queue poisoned");
    }
}

/// Enqueues `shard` unless it is already queued or running.
fn async_enqueue(engine: &AsyncEngine<'_>, shard: usize) {
    let mut queue = engine.queue.lock().expect("queue poisoned");
    if queue.done || queue.active[shard] {
        return;
    }
    queue.active[shard] = true;
    queue.runnable.push_back(shard);
    drop(queue);
    engine.queue_cv.notify_one();
}

/// Finishes a round: clears the shard's active marker *first*, then re-checks
/// for pending work. A deposit or wave advance racing with the end of the
/// round either saw the marker still set (and this re-check sees its work) or
/// re-enqueues the shard itself — no lost wakeups either way.
fn async_finish(engine: &AsyncEngine<'_>, shard: usize) {
    {
        let mut queue = engine.queue.lock().expect("queue poisoned");
        queue.active[shard] = false;
        queue.running -= 1;
    }
    if async_needs_rerun(engine, shard) {
        async_enqueue(engine, shard);
    } else {
        // Possibly the last actor: wake idle workers so the pool can notice
        // `done` (or a stall) in `async_pop`.
        engine.queue_cv.notify_all();
    }
}

/// Whether `shard` has pending work: it still owes the current wave, holds
/// undeposited outbound flushes or an unreported completion, or has arrivals
/// to drain.
fn async_needs_rerun(engine: &AsyncEngine<'_>, shard: usize) -> bool {
    {
        let state = engine.states[shard].lock().expect("shard state poisoned");
        if !state.pending_out.is_empty() || state.completion_pending {
            return true;
        }
        if state.wave <= engine.global_wave.load(Ordering::Acquire) {
            return true;
        }
    }
    !engine.inboxes[shard]
        .lock()
        .expect("inbox poisoned")
        .is_empty()
}

/// Reports one shard's completion of the current wave; the last reporter
/// decides what comes next: a wave with zero invalidations is the global
/// fixed point, a census at or below the node threshold stops exactly where
/// lock-step's start-of-iteration gate would (after one apply-only finishing
/// wave lands the outstanding flushes), the iteration cap stops unconverged
/// (same finishing wave), and otherwise every shard is re-armed for the next
/// wave.
fn async_complete_wave(engine: &AsyncEngine<'_>, control: &RunControl<'_>, deaths: usize) {
    let mut queue = engine.queue.lock().expect("queue poisoned");
    queue.wave_deaths += deaths;
    queue.wave_remaining -= 1;
    if queue.wave_remaining > 0 {
        return;
    }
    let next = engine.global_wave.load(Ordering::Acquire) + 1;
    let alive = engine.alive.load(Ordering::Acquire);
    let mut callback = false;
    if queue.finishing || queue.wave_deaths == 0 {
        // The epilogue finished, or the wave was the fixed point (in which
        // case nothing is in flight and no epilogue is needed).
        queue.converged |= !queue.finishing;
        queue.done = true;
    } else {
        let cap = next >= engine.max_iterations;
        let threshold = alive <= engine.threshold;
        if cap || threshold {
            // Lock-step applies the mailbox of its last iteration before
            // leaving the loop; run one apply-only wave to match. The capped
            // exit issues no further iteration callback (the loop bound was
            // hit); the threshold exit issues one, then breaks at the gate.
            queue.finishing = true;
            queue.converged = threshold && !cap;
            engine.finishing.store(true, Ordering::Release);
            callback = threshold && !cap;
        } else {
            callback = true;
        }
        queue.wave_remaining = engine.shard_count;
        queue.wave_deaths = 0;
        engine.global_wave.store(next, Ordering::Release);
        for shard in 0..engine.shard_count {
            if !queue.active[shard] {
                queue.active[shard] = true;
                queue.runnable.push_back(shard);
            }
        }
    }
    drop(queue);
    engine.queue_cv.notify_all();
    if callback {
        control.compaction_iteration(next, alive);
    }
}

/// Applies one arrived TransferNode against the owner shard, marking the
/// destination dirty for the next wave's frontier. A destination that died in
/// an earlier wave is dropped — the same outcome as a lock-step unmatched
/// transfer.
fn apply_async_transfer(state: &mut AsyncShardState<'_>, transfer: &TransferNode) {
    let Some(local) = state.graph.index_of(&transfer.destination) else {
        return;
    };
    let node = state.graph.node_mut(local).expect("destination is alive");
    apply_transfer(node, transfer);
    if !state.dirty[local] {
        state.dirty[local] = true;
        state.dirty_list.push(local as u32);
    }
}

/// One scheduled round of `shard`: drain the inbox, execute the current wave
/// if this shard still owes it, deposit outbound flushes eagerly, and report
/// wave completion once every outbound lane has drained. Returns whether the
/// round made progress (executed a wave or deposited a flush).
fn async_round(
    engine: &AsyncEngine<'_>,
    shard: usize,
    control: &RunControl<'_>,
    ledger: &MemoryBudget,
) -> Result<bool, PakmanError> {
    control.check("async sharded compaction")?;
    let round_start = Instant::now();
    let mut state = engine.states[shard].lock().expect("shard state poisoned");
    let state = &mut *state;

    // ---- Drain: move arrivals out of the inbox immediately, freeing their
    // lanes, even when they cannot be applied yet — application waits for the
    // canonical wave boundary below. ----
    {
        let mut inbox = engine.inboxes[shard].lock().expect("inbox poisoned");
        state.inbuf.append(&mut inbox);
    }

    let wave = engine.global_wave.load(Ordering::Acquire);
    let mut executed = false;
    if state.wave <= wave && !state.completion_pending {
        let r = state.wave;

        // ---- Apply everything tagged wave `r - 1` — remote lanes and the
        // self lane — in one stable pass ordered by global source slot: the
        // exact order the lock-step mailbox applies its inbox in, so the
        // order-sensitive partial-count takes and path splits inside
        // [`apply_transfer`] land identically. ----
        if r > 0 {
            let mut due: Vec<AsyncFlush> = Vec::new();
            let mut held: Vec<AsyncFlush> = Vec::new();
            for flush in state.inbuf.drain(..) {
                debug_assert!(flush.src_iteration + 1 >= r, "flush missed its wave");
                if flush.src_iteration < r {
                    due.push(flush);
                } else {
                    held.push(flush);
                }
            }
            state.inbuf = held;
            let mut stream: Vec<&(u32, TransferNode)> =
                due.iter().flat_map(|f| f.transfers.iter()).collect();
            // Stable by source slot: one slot's transfers live in one flush,
            // so their relative (path) order survives the sort.
            stream.sort_by_key(|entry| entry.0);
            for (_, transfer) in stream {
                apply_async_transfer(state, transfer);
            }
            for flush in &due {
                if flush.src != shard {
                    ledger.release(flush.bytes);
                }
            }
        }

        if engine.finishing.load(Ordering::Acquire) {
            // Apply-only epilogue: the stop decision is already made, this
            // wave only lands the last iteration's flushes.
            for &slot in &state.dirty_list {
                state.dirty[slot as usize] = false;
            }
            state.dirty_list.clear();
        } else {
            // ---- P1 over the wave's frontier: wave 0 (and every wave under
            // FullScan) scans every alive slot, Frontier waves recheck only
            // slots whose neighbourhood changed in the previous wave.
            // Neighbour aliveness reads the wave-`r` snapshot. ----
            let mut recheck: Vec<u32> = Vec::new();
            if r == 0 || !engine.frontier {
                recheck.extend(state.alive_list.iter().copied());
            } else {
                state.dirty_list.sort_unstable();
                recheck.extend(state.dirty_list.iter().copied());
            }
            for &slot in &state.dirty_list {
                state.dirty[slot as usize] = false;
            }
            state.dirty_list.clear();
            state.checked += recheck.len() as u64;

            let mut invalidated: Vec<usize> = Vec::new();
            for &local in &recheck {
                let Some(node) = state.graph.node(local as usize) else {
                    continue;
                };
                let lookup = |k1mer: &Kmer| -> bool {
                    match engine.global_keys.binary_search(&k1mer.packed()) {
                        Ok(slot) => engine.death_wave[slot].load(Ordering::Acquire) > r,
                        Err(_) => false,
                    }
                };
                if is_invalidation_target_with(lookup, node) {
                    invalidated.push(local as usize);
                }
            }

            // ---- P2: extract the canonical (ascending local slot, path
            // order) stream, tagging each transfer with its global source
            // slot, then publish the deaths as wave-`r` deaths: concurrent
            // wave-`r` predicates still see the wave-start snapshot, wave
            // `r + 1` sees them dead. ----
            let mut outbound: Vec<(u32, TransferNode)> = Vec::new();
            for &local in &invalidated {
                let node = state.graph.node(local).expect("invalidated slot was alive");
                let global = state.globals[local];
                for path in node.paths() {
                    if let Some((pred, succ)) = TransferNode::extract_pair(node, path) {
                        outbound.push((global, pred));
                        outbound.push((global, succ));
                    }
                }
            }
            for &local in &invalidated {
                engine.death_wave[state.globals[local] as usize].store(r + 1, Ordering::Release);
                state.graph.invalidate(local);
            }
            if !invalidated.is_empty() {
                engine.alive.fetch_sub(invalidated.len(), Ordering::AcqRel);
                remove_sorted(&mut state.alive_list, &invalidated);
            }

            // ---- P3: stable partition by destination owner. The self lane
            // goes straight into this shard's wave-tagged buffer (applied at
            // the next wave boundary with everything else); remote lanes
            // queue for eager deposit below. ----
            if !outbound.is_empty() {
                let mut batches: Vec<Vec<(u32, TransferNode)>> =
                    vec![Vec::new(); engine.shard_count];
                for (slot, transfer) in outbound {
                    let dst = shard_of_packed(transfer.destination.packed(), engine.shard_count);
                    batches[dst].push((slot, transfer));
                }
                for (dst, batch) in batches.into_iter().enumerate() {
                    if batch.is_empty() {
                        continue;
                    }
                    let bytes: u64 = batch.iter().map(|(_, t)| t.size_bytes() as u64).sum();
                    state.route_bytes[dst] += bytes;
                    state.transfers_routed += batch.len() as u64;
                    state.flushes.push(MailboxFlushStats {
                        src: shard,
                        dst,
                        src_iteration: r,
                        transfers: batch.len() as u64,
                        bytes,
                    });
                    let flush = AsyncFlush {
                        src: shard,
                        dst,
                        src_iteration: r,
                        transfers: batch,
                        bytes,
                    };
                    if dst == shard {
                        state.inbuf.push(flush);
                    } else {
                        state.pending_out.push_back(flush);
                    }
                }
            }
            state.unreported_deaths = invalidated.len();
        }

        state.wave = r + 1;
        state.completion_pending = true;
        executed = true;
    }

    // ---- Flush delivery: deposit pending lanes eagerly, with per-lane
    // back-pressure ([`ASYNC_LANE_DEPTH`]) and a cancellation point between
    // flushes. Blocked lanes keep FIFO order; other lanes proceed. ----
    let mut blocked = vec![false; engine.shard_count];
    let mut retained: VecDeque<AsyncFlush> = VecDeque::new();
    let mut deposited: Vec<usize> = Vec::new();
    while let Some(flush) = state.pending_out.pop_front() {
        if blocked[flush.dst] {
            retained.push_back(flush);
            continue;
        }
        if let Err(err) = control.check("async mailbox flush") {
            retained.push_back(flush);
            retained.append(&mut state.pending_out);
            state.pending_out = retained;
            return Err(err);
        }
        let mut inbox = engine.inboxes[flush.dst].lock().expect("inbox poisoned");
        let lane_depth = inbox.iter().filter(|f| f.src == shard).count();
        if lane_depth >= ASYNC_LANE_DEPTH {
            blocked[flush.dst] = true;
            drop(inbox);
            retained.push_back(flush);
            continue;
        }
        ledger.charge(flush.bytes);
        let dst = flush.dst;
        inbox.push(flush);
        drop(inbox);
        deposited.push(dst);
    }
    state.pending_out = retained;
    for dst in &deposited {
        async_enqueue(engine, *dst);
    }

    if executed {
        state
            .round_nanos
            .push(round_start.elapsed().as_nanos() as u64);
    }
    if state.completion_pending && state.pending_out.is_empty() {
        state.completion_pending = false;
        let deaths = std::mem::take(&mut state.unreported_deaths);
        async_complete_wave(engine, control, deaths);
    }
    Ok(executed || !deposited.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compaction::compact;
    use crate::kmer_count::{count_kmers, KmerCounterConfig};
    use crate::test_util::reads_for;
    use crate::walk::generate_contigs;

    fn counted_for(k: usize) -> Vec<CountedKmer> {
        let reads = reads_for(4_000, 15.0, 0x5A4D);
        count_kmers(
            &reads,
            KmerCounterConfig {
                k,
                min_count: 1,
                threads: 1,
            },
        )
        .unwrap()
        .0
    }

    fn cfg(threads: usize) -> PakmanConfig {
        PakmanConfig {
            k: 17,
            min_kmer_count: 1,
            compaction_node_threshold: 10,
            threads,
            record_trace: true,
            ..PakmanConfig::default()
        }
    }

    #[test]
    fn sharded_construction_matches_single_graph_node_for_node() {
        let counted = counted_for(17);
        let reference = PakGraph::from_counted_kmers(&counted, 17, 1);
        for shards in [1usize, 2, 7, 32] {
            let sharded = ShardedGraph::from_counted_kmers(&counted, 17, shards, 4);
            assert_eq!(sharded.global_slot_count(), reference.slot_count());
            assert_eq!(sharded.alive_count(), reference.alive_count());
            // Ownership is respected and the global mapping inverts correctly.
            for shard in 0..sharded.shard_count() {
                for (_, node) in sharded.shard(shard).iter_alive() {
                    assert_eq!(node.owner_shard(shards), shard);
                }
            }
            // The stitched global graph equals the reference slot for slot.
            let global = sharded.into_global_graph();
            for slot in 0..reference.slot_count() {
                assert_eq!(global.node(slot), reference.node(slot), "shards = {shards}");
            }
        }
    }

    #[test]
    fn sharded_compaction_is_bit_identical_to_single_graph() {
        let counted = counted_for(17);
        let mut reference_graph = PakGraph::from_counted_kmers(&counted, 17, 1);
        let reference = compact(&mut reference_graph, &cfg(1));

        for shards in [1usize, 2, 7, 32] {
            for threads in [1usize, 4] {
                let mut sharded = ShardedGraph::from_counted_kmers(&counted, 17, shards, threads);
                let (outcome, telemetry) = compact_sharded(&mut sharded, &cfg(threads));
                let what = format!("shards = {shards}, threads = {threads}");
                assert_eq!(outcome.stats, reference.stats, "stats diverged: {what}");
                assert_eq!(outcome.trace, reference.trace, "trace diverged: {what}");
                assert_eq!(telemetry.shard_count, shards);
                assert_eq!(
                    telemetry.initial_alive_per_shard.iter().sum::<usize>(),
                    reference.stats.initial_nodes
                );
                assert_eq!(
                    telemetry.final_alive_per_shard.iter().sum::<usize>(),
                    reference.stats.final_nodes
                );
                // Every transfer went through the mailbox.
                assert_eq!(telemetry.total_transfers(), reference.stats.total_transfers);
                let global = sharded.into_global_graph();
                for slot in 0..reference_graph.slot_count() {
                    assert_eq!(
                        global.node(slot),
                        reference_graph.node(slot),
                        "graph diverged at slot {slot}: {what}"
                    );
                }
                let contigs = generate_contigs(&global, 0);
                let reference_contigs = generate_contigs(&reference_graph, 0);
                assert_eq!(contigs, reference_contigs, "contigs diverged: {what}");
            }
        }
    }

    #[test]
    fn full_scan_mode_matches_too() {
        let counted = counted_for(17);
        let full_cfg = PakmanConfig {
            compaction_mode: CompactionMode::FullScan,
            ..cfg(2)
        };
        let mut reference_graph = PakGraph::from_counted_kmers(&counted, 17, 1);
        let reference = compact(&mut reference_graph, &full_cfg);
        let mut sharded = ShardedGraph::from_counted_kmers(&counted, 17, 5, 2);
        let (outcome, _) = compact_sharded(&mut sharded, &full_cfg);
        assert_eq!(outcome.stats, reference.stats);
        assert_eq!(outcome.trace, reference.trace);
        // A full scan checks every alive node on every iteration.
        for it in &outcome.profile.iterations {
            assert_eq!(it.checked_nodes, it.alive_nodes);
        }
    }

    #[test]
    fn cross_shard_traffic_appears_once_sharded() {
        let counted = counted_for(17);
        let mut sharded = ShardedGraph::from_counted_kmers(&counted, 17, 8, 2);
        let (_, telemetry) = compact_sharded(&mut sharded, &cfg(2));
        assert!(telemetry.total_mailbox_bytes() > 0);
        // With 8 hash-assigned shards most destinations live elsewhere (≈ 7/8).
        assert!(
            telemetry.cross_shard_fraction() > 0.5,
            "cross fraction = {}",
            telemetry.cross_shard_fraction()
        );
        // The route matrix is conserved against the per-iteration ledger.
        let matrix_total: u64 = telemetry.route_bytes.iter().sum();
        assert_eq!(matrix_total, telemetry.total_mailbox_bytes());
        assert!(telemetry.load_imbalance() >= 1.0);

        // One shard: everything stays local.
        let mut single = ShardedGraph::from_counted_kmers(&counted, 17, 1, 2);
        let (_, telemetry) = compact_sharded(&mut single, &cfg(2));
        assert_eq!(telemetry.total_cross_shard_bytes(), 0);
        assert_eq!(telemetry.cross_shard_fraction(), 0.0);
    }

    #[test]
    fn more_shards_than_nodes_warns_but_works() {
        // A tiny read set: far fewer (k-1)-mers than shards, so some shards own
        // zero k-mers. The build must warn (not panic) and stay bit-identical.
        let reads = crate::test_util::reads_from(&["ACGTACCTGATCAGT", "ACGTACCTGATCAGT"]);
        let (counted, _) = count_kmers(
            &reads,
            KmerCounterConfig {
                k: 7,
                min_count: 1,
                threads: 1,
            },
        )
        .unwrap();
        let reference = PakGraph::from_counted_kmers(&counted, 7, 1);
        let sharded = ShardedGraph::from_counted_kmers(&counted, 7, 64, 2);
        assert!(sharded.per_shard_alive().contains(&0));
        assert_eq!(sharded.alive_count(), reference.alive_count());
        let mut sharded = sharded;
        let mut reference = reference;
        let config = PakmanConfig {
            k: 7,
            min_kmer_count: 1,
            compaction_node_threshold: 0,
            threads: 2,
            record_trace: true,
            ..PakmanConfig::default()
        };
        let single_outcome = compact(&mut reference, &config);
        let (outcome, telemetry) = compact_sharded(&mut sharded, &config);
        assert_eq!(outcome.stats, single_outcome.stats);
        assert_eq!(outcome.trace, single_outcome.trace);
        assert_eq!(telemetry.shard_count, 64);
    }

    #[test]
    fn global_lookup_roundtrips() {
        let counted = counted_for(15);
        let sharded = ShardedGraph::from_counted_kmers(&counted, 15, 7, 2);
        for slot in 0..sharded.global_slot_count() {
            let node = sharded.node_global(slot).expect("freshly built: all alive");
            assert_eq!(sharded.index_of_global(&node.k1mer()), Some(slot));
            assert!(sharded.contains(&node.k1mer()));
            assert_eq!(
                sharded.shard_of_global(slot),
                node.owner_shard(sharded.shard_count())
            );
        }
    }
}
