//! Contigs and assembly-quality metrics.

use nmp_pak_genome::DnaString;
use serde::{Deserialize, Serialize};

/// A contig: one contiguous stretch of assembled genome (Fig. 1, step 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contig {
    /// The assembled sequence.
    pub sequence: DnaString,
}

impl Contig {
    /// Creates a contig from a sequence.
    pub fn new(sequence: DnaString) -> Self {
        Contig { sequence }
    }

    /// Contig length in bases.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Returns `true` if the contig is empty.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }
}

/// Assembly-quality statistics over a set of contigs.
///
/// N50 is the paper's quality metric (§4.4, Table 1): the length of the smallest
/// contig such that contigs of that length or longer cover at least half of the total
/// assembly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssemblyStats {
    /// Number of contigs.
    pub contig_count: usize,
    /// Sum of contig lengths in bases.
    pub total_length: usize,
    /// The N50 metric.
    pub n50: usize,
    /// Length of the largest contig.
    pub largest_contig: usize,
    /// Mean contig length (rounded down), 0 when there are no contigs.
    pub mean_length: usize,
}

impl AssemblyStats {
    /// Computes statistics for a set of contigs.
    pub fn from_contigs(contigs: &[Contig]) -> Self {
        let lengths: Vec<usize> = contigs.iter().map(Contig::len).collect();
        Self::from_lengths(&lengths)
    }

    /// Computes statistics directly from contig lengths.
    pub fn from_lengths(lengths: &[usize]) -> Self {
        let total_length: usize = lengths.iter().sum();
        let contig_count = lengths.len();
        AssemblyStats {
            contig_count,
            total_length,
            n50: n50(lengths),
            largest_contig: lengths.iter().copied().max().unwrap_or(0),
            mean_length: total_length.checked_div(contig_count).unwrap_or(0),
        }
    }
}

/// Computes the N50 of a set of contig lengths.
///
/// Returns 0 for an empty set.
pub fn n50(lengths: &[usize]) -> usize {
    if lengths.is_empty() {
        return 0;
    }
    let total: usize = lengths.iter().sum();
    let mut sorted: Vec<usize> = lengths.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let half = total.div_ceil(2);
    let mut cumulative = 0usize;
    for len in sorted {
        cumulative += len;
        if cumulative >= half {
            return len;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n50_of_known_sets() {
        // Classic example: lengths 80, 70, 50, 40, 30, 20 (total 290, half 145):
        // 80 + 70 = 150 ≥ 145 → N50 = 70.
        assert_eq!(n50(&[80, 70, 50, 40, 30, 20]), 70);
        assert_eq!(n50(&[100]), 100);
        assert_eq!(n50(&[]), 0);
        // Equal lengths: N50 equals that length.
        assert_eq!(n50(&[50, 50, 50, 50]), 50);
    }

    #[test]
    fn n50_is_order_independent() {
        let a = [10, 500, 20, 300, 40];
        let mut b = a;
        b.reverse();
        assert_eq!(n50(&a), n50(&b));
    }

    #[test]
    fn fragmentation_lowers_n50() {
        // One long contig versus the same bases split into many pieces.
        let whole = [10_000usize];
        let fragmented = [1_000usize; 10];
        assert!(n50(&whole) > n50(&fragmented));
        assert_eq!(
            whole.iter().sum::<usize>(),
            fragmented.iter().sum::<usize>()
        );
    }

    #[test]
    fn stats_from_contigs() {
        let contigs = vec![
            Contig::new("ACGTACGTAC".parse().unwrap()),
            Contig::new("ACGT".parse().unwrap()),
            Contig::new("AC".parse().unwrap()),
        ];
        let stats = AssemblyStats::from_contigs(&contigs);
        assert_eq!(stats.contig_count, 3);
        assert_eq!(stats.total_length, 16);
        assert_eq!(stats.largest_contig, 10);
        assert_eq!(stats.mean_length, 5);
        assert_eq!(stats.n50, 10);
    }

    #[test]
    fn empty_stats_are_zeroed() {
        let stats = AssemblyStats::from_contigs(&[]);
        assert_eq!(stats, AssemblyStats::default());
    }

    #[test]
    fn contig_basics() {
        let c = Contig::new("ACGT".parse().unwrap());
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }
}
