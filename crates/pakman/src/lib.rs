//! The PaKman de novo genome assembly algorithm, as described (and refined) by the
//! NMP-PaK paper.
//!
//! PaKman assembles short reads with a de Bruijn graph expressed as **MacroNodes**:
//! all k-mers sharing a (k-1)-mer are grouped into one node that stores the shared
//! (k-1)-mer plus its prefix/suffix extensions (Fig. 3 of the paper). MacroNodes form
//! the **PaK-graph**, which is then shrunk by **Iterative Compaction** — repeatedly
//! invalidating nodes whose (k-1)-mer is the lexicographically largest among their
//! neighbours and folding their sequence content into those neighbours via
//! **TransferNodes** (Fig. 4) — until the graph is small enough for a fast final
//! **graph walk** that emits contigs.
//!
//! This crate is the pure-software (CPU) implementation, including the software
//! optimizations of §4.5 (parallel k-mer counting, pointer-based MacroNode storage,
//! batch processing of §4.4). The near-memory hardware model that accelerates
//! Iterative Compaction lives in the `nmp-pak-nmphw` crate and consumes the
//! [`trace::CompactionTrace`] recorded here, mirroring the paper's trace-driven
//! Ramulator methodology (§5.2).
//!
//! # Quick start
//!
//! ```
//! use nmp_pak_genome::{ReferenceGenome, ReadSimulator, SequencerConfig};
//! use nmp_pak_pakman::{PakmanAssembler, PakmanConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let genome = ReferenceGenome::builder().length(20_000).seed(3).build()?;
//! let reads = ReadSimulator::new(SequencerConfig {
//!     coverage: 25.0,
//!     substitution_error_rate: 0.0,
//!     ..SequencerConfig::default()
//! })
//! .simulate(&genome)?;
//!
//! let assembler = PakmanAssembler::new(PakmanConfig {
//!     k: 21,
//!     ..PakmanConfig::default()
//! });
//! let output = assembler.assemble(&reads)?;
//! assert!(output.stats.total_length > 10_000);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod compaction;
pub mod config;
pub mod contig;
pub mod control;
pub mod error;
pub mod graph;
pub mod kmer_count;
pub mod macronode;
pub mod memory;
pub(crate) mod par;
pub mod pipeline;
pub mod shard;
pub mod spill;
pub mod stage;
#[cfg(test)]
pub(crate) mod test_util;
pub mod trace;
pub mod transfer;
pub mod walk;

pub use batch::{BatchAssembler, BatchAssemblyOutput, BatchPlan, BatchSchedule};
pub use compaction::{
    compact, compact_controlled, compact_with_scratch, CompactionOutcome, CompactionProfile,
    CompactionScratch, CompactionStats, IterationProfile, IterationStats, SizeHistogram,
};
pub use config::{CompactionMode, PakmanConfig, ShardConfig, ShardSchedule, SpillConfig};
pub use contig::{AssemblyStats, Contig};
pub use control::{CancelToken, NullObserver, ProgressObserver, RunControl};
pub use error::PakmanError;
pub use graph::PakGraph;
pub use kmer_count::{
    count_kmers, count_kmers_spilled, count_kmers_spilled_controlled, CountedKmer,
    KmerCounterConfig,
};
pub use macronode::{MacroNode, ThroughPath};
pub use memory::{MemoryBudget, MemoryFootprint};
pub use pipeline::{AssemblyOutput, PakmanAssembler, PhaseTimings};
pub use shard::{
    compact_sharded, compact_sharded_controlled, MailboxFlushStats, MailboxIterationStats,
    ShardedGraph, ShardingTelemetry,
};
pub use spill::SpillTelemetry;
pub use stage::{AssemblyPipeline, CompactArtifact, DrainedReads, FrontArtifact, Stage};
pub use trace::{CompactionTrace, IterationTrace, NodeCheck, TransferEvent, UpdateEvent};
pub use transfer::{ShardMailbox, TransferNode};
pub use walk::{generate_contigs, generate_contigs_threaded, longest_contig, write_contigs_fasta};
