//! The MacroNode data structure (Fig. 3 of the paper).
//!
//! A MacroNode groups every k-mer that shares a (k-1)-mer. The shared (k-1)-mer is
//! stored once; each grouped k-mer contributes a one-base *prefix* or *suffix*
//! extension. During Iterative Compaction those extensions grow into multi-base
//! strings as neighbouring nodes are folded in, which is exactly the dynamic,
//! non-uniform size behaviour the paper analyses in §3.4 (Figs. 7 and 8).
//!
//! Internally this implementation stores the node's *wiring* directly as a list of
//! [`ThroughPath`]s — (prefix extension, suffix extension, count) triples describing
//! how sequence flow passes through the node. The paper's prefix list, suffix list and
//! internal wiring information are all derived views of this list, which keeps the
//! TransferNode extraction and update rules (Fig. 4) straightforward to express.

use nmp_pak_genome::{Base, DnaString, Kmer};

/// One unit of sequence flow through a MacroNode.
///
/// * `prefix = None` means the flow *starts* at this node (a read began here);
/// * `suffix = None` means the flow *ends* at this node (a read ended here).
///
/// The invariant linking neighbouring nodes: if node `X` has a path with prefix `e`,
/// then the predecessor node `P` (whose (k-1)-mer is the first k-1 bases of
/// `e + X.k1mer`) has a path whose suffix `s` satisfies `P.k1mer + s == e + X.k1mer`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThroughPath {
    /// Incoming extension (bases that precede the (k-1)-mer), or `None` for a
    /// read-start terminal.
    pub prefix: Option<DnaString>,
    /// Outgoing extension (bases that follow the (k-1)-mer), or `None` for a
    /// read-end terminal.
    pub suffix: Option<DnaString>,
    /// Number of k-mer observations supporting this path.
    pub count: u32,
}

impl ThroughPath {
    /// Creates a path with both sides present.
    pub fn through(prefix: DnaString, suffix: DnaString, count: u32) -> Self {
        ThroughPath {
            prefix: Some(prefix),
            suffix: Some(suffix),
            count,
        }
    }

    /// `true` if the path has both an incoming and an outgoing extension.
    pub fn is_interior(&self) -> bool {
        self.prefix.is_some() && self.suffix.is_some()
    }

    /// Approximate heap bytes used by this path (packed extensions plus bookkeeping).
    pub fn size_bytes(&self) -> usize {
        let ext_bytes =
            |e: &Option<DnaString>| e.as_ref().map(|s| s.len().div_ceil(4) + 16).unwrap_or(1);
        // count (4) + two Option discriminants (2) + vector bookkeeping share (8)
        14 + ext_bytes(&self.prefix) + ext_bytes(&self.suffix)
    }
}

/// A MacroNode: a shared (k-1)-mer plus the sequence flow passing through it.
///
/// # Example
///
/// ```
/// use nmp_pak_genome::{Base, Kmer};
/// use nmp_pak_pakman::MacroNode;
///
/// // Node "GTCA" with one incoming k-mer AGTCA and one outgoing k-mer GTCAT.
/// let node = MacroNode::from_extensions(
///     Kmer::from_ascii("GTCA").unwrap(),
///     vec![(Base::A, 6)],
///     vec![(Base::T, 6)],
/// );
/// assert_eq!(node.paths().len(), 1);
/// assert_eq!(node.predecessor_k1mers()[0].to_string(), "AGTC");
/// assert_eq!(node.successor_k1mers()[0].to_string(), "TCAT");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroNode {
    k1mer: Kmer,
    paths: Vec<ThroughPath>,
}

impl MacroNode {
    /// Creates an empty MacroNode for the given (k-1)-mer.
    pub fn new(k1mer: Kmer) -> Self {
        MacroNode {
            k1mer,
            paths: Vec::new(),
        }
    }

    /// Builds a MacroNode from single-base prefix and suffix extensions with counts,
    /// running the count-based wiring step of assembly stage C (Fig. 2).
    ///
    /// Prefix and suffix multiplicities are matched greedily in descending count order
    /// (the same count-proportional heuristic PaKman uses); any imbalance becomes
    /// terminal flow (`prefix = None` or `suffix = None` paths).
    pub fn from_extensions(
        k1mer: Kmer,
        prefixes: Vec<(Base, u32)>,
        suffixes: Vec<(Base, u32)>,
    ) -> Self {
        let mut node = MacroNode::new(k1mer);
        node.wire(prefixes, suffixes);
        node
    }

    /// Fast-path constructor for the by-far most common node shape: exactly one
    /// prefix extension and one suffix extension (an interior chain node).
    ///
    /// Produces exactly what [`MacroNode::from_extensions`] would for the same
    /// input — a single through-path carrying `max(prefix_count, suffix_count)`
    /// flow (the count-imbalance folding of [`MacroNode::wire`][Self::from_extensions]
    /// collapses to `max` when each side has one extension) — without allocating
    /// the intermediate extension lists. Construction calls this for every 1-in /
    /// 1-out node, which is the overwhelming majority of the graph.
    ///
    /// # Panics
    ///
    /// Debug builds assert both counts are nonzero (a zero count would make the
    /// node terminal, which this constructor cannot express).
    pub fn single_through(
        k1mer: Kmer,
        prefix: Base,
        prefix_count: u32,
        suffix: Base,
        suffix_count: u32,
    ) -> Self {
        debug_assert!(prefix_count > 0 && suffix_count > 0);
        let mut node = MacroNode::new(k1mer);
        node.paths.push(ThroughPath::through(
            std::iter::once(prefix).collect(),
            std::iter::once(suffix).collect(),
            prefix_count.max(suffix_count),
        ));
        node
    }

    fn wire(&mut self, prefixes: Vec<(Base, u32)>, suffixes: Vec<(Base, u32)>) {
        let mut ps: Vec<(DnaString, u32)> = prefixes
            .into_iter()
            .filter(|(_, c)| *c > 0)
            .map(|(b, c)| (std::iter::once(b).collect(), c))
            .collect();
        let mut ss: Vec<(DnaString, u32)> = suffixes
            .into_iter()
            .filter(|(_, c)| *c > 0)
            .map(|(b, c)| (std::iter::once(b).collect(), c))
            .collect();
        ps.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        ss.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        let best_prefix = ps.first().map(|(e, _)| e.clone());
        let best_suffix = ss.first().map(|(e, _)| e.clone());

        let (mut i, mut j) = (0usize, 0usize);
        while i < ps.len() && j < ss.len() {
            let flow = ps[i].1.min(ss[j].1);
            self.paths
                .push(ThroughPath::through(ps[i].0.clone(), ss[j].0.clone(), flow));
            ps[i].1 -= flow;
            ss[j].1 -= flow;
            if ps[i].1 == 0 {
                i += 1;
            }
            if ss[j].1 == 0 {
                j += 1;
            }
        }

        // Leftover flow on one side: if the opposite side saw any flow at all, the
        // imbalance is only sampling noise from read boundaries (the reads that start
        // or end here are covered by longer reads passing through), so the leftover is
        // folded into an existing path with the same extension (or wired through the
        // opposite side's dominant extension). Only nodes with *no* flow on the
        // opposite side carry true terminal (contig-endpoint) flow.
        for (prefix, count) in ps.into_iter().skip(i).filter(|(_, c)| *c > 0) {
            if let Some(path) = self
                .paths
                .iter_mut()
                .find(|p| p.prefix.as_ref() == Some(&prefix))
            {
                path.count += count;
            } else if let Some(suffix) = &best_suffix {
                self.paths
                    .push(ThroughPath::through(prefix, suffix.clone(), count));
            } else {
                self.paths.push(ThroughPath {
                    prefix: Some(prefix),
                    suffix: None,
                    count,
                });
            }
        }
        for (suffix, count) in ss.into_iter().skip(j).filter(|(_, c)| *c > 0) {
            if let Some(path) = self
                .paths
                .iter_mut()
                .find(|p| p.suffix.as_ref() == Some(&suffix))
            {
                path.count += count;
            } else if let Some(prefix) = &best_prefix {
                self.paths
                    .push(ThroughPath::through(prefix.clone(), suffix, count));
            } else {
                self.paths.push(ThroughPath {
                    prefix: None,
                    suffix: Some(suffix),
                    count,
                });
            }
        }
    }

    /// The node's (k-1)-mer.
    pub fn k1mer(&self) -> Kmer {
        self.k1mer
    }

    /// The owner-computes shard this node lives on when the graph is split into
    /// `shard_count` shards (a stable hash of the packed (k-1)-mer; see
    /// [`nmp_pak_genome::shard_of_packed`]).
    pub fn owner_shard(&self, shard_count: usize) -> usize {
        nmp_pak_genome::shard_of_packed(self.k1mer.packed(), shard_count)
    }

    /// The sequence-flow paths through this node.
    pub fn paths(&self) -> &[ThroughPath] {
        &self.paths
    }

    /// Mutable access to the through-path list. Hidden: this exists for
    /// compaction updates and the pre-refactor benchmark fixtures in
    /// `nmp-pak-bench`; direct edits bypass the wiring invariants, so it is not
    /// part of the supported API surface.
    #[doc(hidden)]
    pub fn paths_mut(&mut self) -> &mut Vec<ThroughPath> {
        &mut self.paths
    }

    /// Adds a path (used when merging per-batch compacted graphs).
    pub fn push_path(&mut self, path: ThroughPath) {
        self.paths.push(path);
    }

    /// Distinct prefix extensions with aggregated counts.
    pub fn prefix_extensions(&self) -> Vec<(DnaString, u32)> {
        aggregate(
            self.paths
                .iter()
                .filter_map(|p| p.prefix.as_ref().map(|e| (e.clone(), p.count))),
        )
    }

    /// Distinct suffix extensions with aggregated counts.
    pub fn suffix_extensions(&self) -> Vec<(DnaString, u32)> {
        aggregate(
            self.paths
                .iter()
                .filter_map(|p| p.suffix.as_ref().map(|e| (e.clone(), p.count))),
        )
    }

    /// Total incoming (prefix-side) flow, excluding terminal starts.
    pub fn incoming_count(&self) -> u32 {
        self.paths
            .iter()
            .filter(|p| p.prefix.is_some())
            .map(|p| p.count)
            .sum()
    }

    /// Total outgoing (suffix-side) flow, excluding terminal ends.
    pub fn outgoing_count(&self) -> u32 {
        self.paths
            .iter()
            .filter(|p| p.suffix.is_some())
            .map(|p| p.count)
            .sum()
    }

    /// Flow that starts at this node (read-start terminals).
    pub fn terminal_start_count(&self) -> u32 {
        self.paths
            .iter()
            .filter(|p| p.prefix.is_none())
            .map(|p| p.count)
            .sum()
    }

    /// Flow that ends at this node (read-end terminals).
    pub fn terminal_end_count(&self) -> u32 {
        self.paths
            .iter()
            .filter(|p| p.suffix.is_none())
            .map(|p| p.count)
            .sum()
    }

    /// `true` if every path passes through the node (no terminal flow). Only such
    /// nodes are candidates for invalidation during Iterative Compaction — removing a
    /// node with terminal flow would lose a contig endpoint.
    pub fn is_fully_interior(&self) -> bool {
        !self.paths.is_empty() && self.paths.iter().all(ThroughPath::is_interior)
    }

    /// The (k-1)-mer of the predecessor node reached through prefix extension `prefix`.
    ///
    /// This is the "calculate preceding node's (k-1)-mer" append operation of
    /// pipeline stage P1 (Fig. 4 (b), Fig. 10): the first k-1 bases of
    /// `prefix + self.k1mer`. Computed directly on the packed representations —
    /// no intermediate `DnaString` is spelled out — because stage P1 evaluates
    /// this for every neighbour of every checked node, every iteration.
    pub fn predecessor_k1mer(&self, prefix: &DnaString) -> Kmer {
        let k1_len = self.k1mer.k();
        let p = prefix.len();
        if p >= k1_len {
            // The neighbour lies entirely inside the extension.
            return pack_window(prefix, 0, k1_len);
        }
        // `prefix` supplies the leading bases; the rest is our own (k-1)-mer with
        // its last `p` bases dropped (`packed >> 2p`).
        let high = pack_window_raw(prefix, 0, p);
        let low = self.k1mer.packed() >> (2 * p);
        Kmer::from_packed((high << (2 * (k1_len - p))) | low, k1_len)
    }

    /// The (k-1)-mer of the successor node reached through suffix extension `suffix`:
    /// the last k-1 bases of `self.k1mer + suffix`. Packed-arithmetic mirror of
    /// [`MacroNode::predecessor_k1mer`].
    pub fn successor_k1mer(&self, suffix: &DnaString) -> Kmer {
        let k1_len = self.k1mer.k();
        let s = suffix.len();
        if s >= k1_len {
            return pack_window(suffix, s - k1_len, k1_len);
        }
        // Our own (k-1)-mer with its first `s` bases dropped (mask keeps the low
        // bases), then `suffix` appended below it.
        let keep = k1_len - s;
        let high = self.k1mer.packed() & ((1u64 << (2 * keep)) - 1);
        let low = pack_window_raw(suffix, 0, s);
        Kmer::from_packed((high << (2 * s)) | low, k1_len)
    }

    /// Distinct predecessor (k-1)-mers over all prefix extensions.
    pub fn predecessor_k1mers(&self) -> Vec<Kmer> {
        let mut out: Vec<Kmer> = self
            .prefix_extensions()
            .iter()
            .map(|(e, _)| self.predecessor_k1mer(e))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Distinct successor (k-1)-mers over all suffix extensions.
    pub fn successor_k1mers(&self) -> Vec<Kmer> {
        let mut out: Vec<Kmer> = self
            .suffix_extensions()
            .iter()
            .map(|(e, _)| self.successor_k1mer(e))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Approximate in-memory size of the node in bytes.
    ///
    /// Mirrors the accounting the paper uses for Figs. 7–8 and the 1 KB hybrid-offload
    /// threshold: a fixed header (packed (k-1)-mer, vector headers, map entry) plus the
    /// per-path extension storage.
    pub fn size_bytes(&self) -> usize {
        const HEADER_BYTES: usize = 64;
        HEADER_BYTES
            + self
                .paths
                .iter()
                .map(ThroughPath::size_bytes)
                .sum::<usize>()
    }
}

/// `prefix + k1mer` spelled out as a [`DnaString`].
pub(crate) fn spell_prefix(prefix: &DnaString, k1mer: &Kmer) -> DnaString {
    let mut s = DnaString::with_capacity(prefix.len() + k1mer.k());
    s.extend_from(prefix);
    s.extend(k1mer.to_dna_string().iter());
    s
}

/// `k1mer + suffix` spelled out as a [`DnaString`].
pub(crate) fn spell_suffix(k1mer: &Kmer, suffix: &DnaString) -> DnaString {
    let mut s = DnaString::with_capacity(suffix.len() + k1mer.k());
    s.extend(k1mer.to_dna_string().iter());
    s.extend_from(suffix);
    s
}

/// Extracts the `[start, start + len)` window of `dna` as a [`Kmer`].
pub(crate) fn kmer_from_slice(dna: &DnaString, start: usize, len: usize) -> Kmer {
    Kmer::from_dna(dna, start, len).expect("window bounds validated by caller")
}

/// Packs the `[start, start + len)` window of `dna` into a [`Kmer`] straight from
/// the 2-bit codes — no intermediate `DnaString`, no per-base enum round-trip.
fn pack_window(dna: &DnaString, start: usize, len: usize) -> Kmer {
    Kmer::from_packed(pack_window_raw(dna, start, len), len)
}

/// The raw packed word of the `[start, start + len)` window, first base in the
/// most significant occupied bits (the [`Kmer`] bit layout).
fn pack_window_raw(dna: &DnaString, start: usize, len: usize) -> u64 {
    dna.codes()
        .skip(start)
        .take(len)
        .fold(0u64, |acc, code| (acc << 2) | code as u64)
}

/// ASCII-lexicographic rank of each 2-bit base code: the packed code order is
/// `A < C < T < G` (the paper's Fig. 4 ordering) but extension lists are sorted
/// in character order `A < C < G < T`, so codes `T` (2) and `G` (3) swap ranks.
const LEX_RANK: [u8; 4] = [0, 1, 3, 2];

/// Compares two sequences in ASCII-lexicographic order (`A < C < G < T`, shorter
/// prefix first) without spelling either one out. Equivalent to
/// `a.to_string().cmp(&b.to_string())`, which the previous comparator computed —
/// allocating two `String`s per comparison.
fn cmp_lexicographic(a: &DnaString, b: &DnaString) -> std::cmp::Ordering {
    for (ca, cb) in a.codes().zip(b.codes()) {
        match LEX_RANK[ca as usize].cmp(&LEX_RANK[cb as usize]) {
            std::cmp::Ordering::Equal => continue,
            non_eq => return non_eq,
        }
    }
    a.len().cmp(&b.len())
}

/// Merges duplicate extensions and orders the result by count (descending), then
/// ASCII-lexicographically. The dedupe is a sort over the packed codes followed by
/// a run-length merge; the seed's linear-scan dedupe was O(n²) and its comparator
/// called `to_string()` on every comparison.
fn aggregate<I: Iterator<Item = (DnaString, u32)>>(items: I) -> Vec<(DnaString, u32)> {
    let mut out: Vec<(DnaString, u32)> = items.collect();
    out.sort_by(|a, b| cmp_lexicographic(&a.0, &b.0));
    let mut merged: Vec<(DnaString, u32)> = Vec::with_capacity(out.len());
    for (ext, count) in out {
        match merged.last_mut() {
            Some((e, c)) if *e == ext => *c += count,
            _ => merged.push((ext, count)),
        }
    }
    merged.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| cmp_lexicographic(&a.0, &b.0)));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(text: &str) -> Kmer {
        Kmer::from_ascii(text).unwrap()
    }

    fn d(text: &str) -> DnaString {
        text.parse().unwrap()
    }

    #[test]
    fn paper_fig3_example_groups_kmers_by_shared_k1mer() {
        // Fig. 3(a): with k = 5, k-mers AGTCA, CGTCA, TGTCA, GTCAT, GTCAG share
        // (k-1)-mer GTCA: three prefixes (A, C, T) and two suffixes (T, G).
        let node = MacroNode::from_extensions(
            k("GTCA"),
            vec![(Base::A, 1), (Base::C, 1), (Base::T, 1)],
            vec![(Base::T, 1), (Base::G, 1)],
        );
        assert_eq!(node.prefix_extensions().len(), 3);
        assert_eq!(node.suffix_extensions().len(), 2);
        assert_eq!(node.incoming_count(), 3);
        // The read that ends at this node is covered by the through-flow, so the
        // one-k-mer imbalance is wired through rather than kept as terminal flow.
        assert_eq!(node.outgoing_count(), 3);
        assert_eq!(node.terminal_end_count(), 0);
        assert!(node.is_fully_interior());
    }

    #[test]
    fn single_through_matches_general_wiring() {
        for (pc, sc) in [(1, 1), (7, 7), (2, 5), (9, 3)] {
            let fast = MacroNode::single_through(k("GTCA"), Base::A, pc, Base::T, sc);
            let general =
                MacroNode::from_extensions(k("GTCA"), vec![(Base::A, pc)], vec![(Base::T, sc)]);
            assert_eq!(fast, general, "pc={pc} sc={sc}");
        }
    }

    #[test]
    fn wiring_conserves_counts() {
        let node = MacroNode::from_extensions(
            k("ACGT"),
            vec![(Base::A, 10), (Base::C, 3)],
            vec![(Base::G, 7), (Base::T, 6)],
        );
        let total_in: u32 = node.incoming_count();
        let total_out: u32 = node.outgoing_count();
        assert_eq!(total_in, 13);
        assert_eq!(total_out, 13);
        let path_total: u32 = node.paths().iter().map(|p| p.count).sum();
        // Interior flow is min(13, 13) = 13; no terminals needed.
        assert_eq!(path_total, 13);
        assert!(node.is_fully_interior());
    }

    #[test]
    fn imbalance_with_flow_on_both_sides_is_wired_through() {
        let node = MacroNode::from_extensions(k("ACGT"), vec![(Base::A, 2)], vec![(Base::G, 5)]);
        // The 3 extra suffix observations are wired through the dominant prefix.
        assert_eq!(node.terminal_start_count(), 0);
        assert_eq!(node.incoming_count(), 5);
        assert_eq!(node.outgoing_count(), 5);
        assert!(node.is_fully_interior());
    }

    #[test]
    fn one_sided_nodes_carry_terminal_flow() {
        let start = MacroNode::from_extensions(k("ACGT"), vec![(Base::A, 0)], vec![(Base::G, 4)]);
        assert_eq!(start.terminal_start_count(), 4);
        assert!(!start.is_fully_interior());
        let end = MacroNode::from_extensions(k("ACGT"), vec![(Base::C, 2)], vec![(Base::G, 0)]);
        assert_eq!(end.terminal_end_count(), 2);
        assert!(!end.is_fully_interior());
    }

    #[test]
    fn zero_count_extensions_are_ignored() {
        let node = MacroNode::from_extensions(
            k("ACGT"),
            vec![(Base::A, 0), (Base::C, 2)],
            vec![(Base::G, 2), (Base::T, 0)],
        );
        assert_eq!(node.prefix_extensions().len(), 1);
        assert_eq!(node.suffix_extensions().len(), 1);
    }

    #[test]
    fn neighbour_k1mers_match_paper_fig4() {
        // Fig. 4(b): node GTCA with prefixes {A, C} and suffixes {T, G} has
        // predecessors AGTC / CGTC and successors TCAT / TCAG.
        let node = MacroNode::from_extensions(
            k("GTCA"),
            vec![(Base::A, 1), (Base::C, 1)],
            vec![(Base::T, 1), (Base::G, 1)],
        );
        let preds: Vec<String> = node
            .predecessor_k1mers()
            .iter()
            .map(Kmer::to_string)
            .collect();
        let succs: Vec<String> = node
            .successor_k1mers()
            .iter()
            .map(Kmer::to_string)
            .collect();
        assert!(preds.contains(&"AGTC".to_string()));
        assert!(preds.contains(&"CGTC".to_string()));
        assert!(succs.contains(&"TCAT".to_string()));
        assert!(succs.contains(&"TCAG".to_string()));
    }

    #[test]
    fn multi_base_extensions_compute_neighbours_correctly() {
        // Fig. 4(b) also computes CAGT for the two-base prefix "CA" of node GTCA.
        let node = MacroNode::new(k("GTCA"));
        assert_eq!(node.predecessor_k1mer(&d("CA")).to_string(), "CAGT");
        assert_eq!(node.successor_k1mer(&d("CA")).to_string(), "CACA");
        // Extensions longer than k-1 work too: the neighbour lies entirely inside the
        // extension.
        assert_eq!(node.predecessor_k1mer(&d("TTTTTT")).to_string(), "TTTT");
        assert_eq!(node.successor_k1mer(&d("AAAAAA")).to_string(), "AAAA");
    }

    #[test]
    fn size_grows_with_extension_length() {
        let small = MacroNode::from_extensions(k("ACGT"), vec![(Base::A, 1)], vec![(Base::C, 1)]);
        let mut large = small.clone();
        large.paths_mut()[0].suffix = Some(d(&"ACGT".repeat(64)));
        assert!(large.size_bytes() > small.size_bytes());
        assert!(small.size_bytes() >= 64);
    }

    #[test]
    fn aggregated_extensions_merge_duplicates() {
        let mut node = MacroNode::new(k("ACGT"));
        node.push_path(ThroughPath::through(d("A"), d("T"), 3));
        node.push_path(ThroughPath::through(d("A"), d("G"), 2));
        node.push_path(ThroughPath::through(d("C"), d("T"), 1));
        let prefixes = node.prefix_extensions();
        assert_eq!(prefixes[0], (d("A"), 5));
        assert_eq!(prefixes[1], (d("C"), 1));
        let suffixes = node.suffix_extensions();
        assert_eq!(suffixes[0], (d("T"), 4));
    }

    #[test]
    fn spell_helpers_concatenate() {
        assert_eq!(spell_prefix(&d("AG"), &k("TTC")).to_string(), "AGTTC");
        assert_eq!(spell_suffix(&k("TTC"), &d("AG")).to_string(), "TTCAG");
    }

    #[test]
    fn packed_neighbour_k1mers_match_the_spelled_construction() {
        // The packed-arithmetic neighbour computation must agree with the
        // reference construction (spell the extension + (k-1)-mer, then slice)
        // for every extension length: shorter than, equal to, and longer than
        // the (k-1)-mer.
        let node = MacroNode::new(k("GTCA"));
        let k1 = node.k1mer();
        for ext in ["A", "CA", "TAG", "GATC", "CATGA", "TTTTTTTT"] {
            let ext = d(ext);
            let pred_spell = spell_prefix(&ext, &k1);
            assert_eq!(
                node.predecessor_k1mer(&ext),
                kmer_from_slice(&pred_spell, 0, k1.k()),
                "predecessor via extension {ext:?}"
            );
            let succ_spell = spell_suffix(&k1, &ext);
            assert_eq!(
                node.successor_k1mer(&ext),
                kmer_from_slice(&succ_spell, succ_spell.len() - k1.k(), k1.k()),
                "successor via extension {ext:?}"
            );
        }
    }

    #[test]
    fn aggregate_orders_by_count_desc_then_lexicographic() {
        // Regression for the sort-over-packed-codes rewrite: the order must stay
        // count-descending with ASCII-lexicographic (`A < C < G < T`) tie-breaks
        // — note G sorts *before* T here even though the packed code order is
        // A < C < T < G.
        let mut node = MacroNode::new(k("ACGT"));
        for (prefix, count) in [
            ("T", 2),
            ("G", 2),
            ("GA", 5),
            ("A", 2),
            ("GAT", 5),
            ("T", 3), // duplicate: merges with the earlier "T" to count 5
        ] {
            node.push_path(ThroughPath::through(d(prefix), d("C"), count));
        }
        let prefixes = node.prefix_extensions();
        let rendered: Vec<(String, u32)> =
            prefixes.iter().map(|(e, c)| (e.to_string(), *c)).collect();
        assert_eq!(
            rendered,
            vec![
                ("GA".to_string(), 5),
                ("GAT".to_string(), 5),
                ("T".to_string(), 5),
                ("A".to_string(), 2),
                ("G".to_string(), 2),
            ]
        );
        // The comparator agrees with string comparison on every pair, including
        // the prefix-of-the-other case.
        for a in ["A", "C", "G", "T", "GA", "GAT", "TA"] {
            for b in ["A", "C", "G", "T", "GA", "GAT", "TA"] {
                assert_eq!(
                    cmp_lexicographic(&d(a), &d(b)),
                    a.to_string().cmp(&b.to_string()),
                    "cmp_lexicographic({a}, {b})"
                );
            }
        }
    }
}
