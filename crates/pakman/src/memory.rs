//! Memory-footprint accounting (§3.5 and §4.4–4.5 of the paper).
//!
//! PaKman's runtime footprint expands to 13–25× the on-disk input size during
//! MacroNode construction, wiring and Iterative Compaction; the paper's software
//! optimizations reduce the peak by 1.4× (pointer-based `MN_map`, deferred deletion)
//! and batching by a further ~10× (processing 10 % of the input at a time), for a
//! combined 14× reduction. This module models those quantities for a given workload
//! so the footprint experiments (Table 1 context, §6.6 GPU-capacity analysis) can be
//! reproduced at any scale.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Live byte-budget accounting shared by every bounded-memory mechanism.
///
/// Where [`MemoryFootprint`] is the *analytic* model (what a workload would
/// need), a `MemoryBudget` is the *runtime* ledger: bytes are charged as data
/// becomes resident and released when it is evicted, and the high-water mark is
/// recorded. Both the pipelined batch scheduler's `max_inflight_bytes` window
/// ([`crate::batch::BatchSchedule::Pipelined`]) and the external-memory
/// counter's spill budget ([`crate::config::SpillConfig`]) draw from this one
/// machinery, so "resident bytes" means the same thing on both paths (the
/// shared-accounting contract in DESIGN.md).
///
/// The ledger is advisory, not an allocator: callers decide what to do when
/// [`MemoryBudget::is_over`] reports an overdraft (stall admission, spill the
/// largest buckets). Charging is allowed to exceed the capacity so a consumer
/// larger than the whole budget can still make progress.
///
/// Budgets can be chained: a child created with [`MemoryBudget::with_parent`]
/// forwards every charge and release to its parent, and reports an overdraft
/// when *either* its own capacity or the parent's is exceeded. This is how the
/// job server imposes one host-wide cap across many concurrent assemblies —
/// each job's batch window and spill budget are children of the server's
/// global ledger, so global pressure stalls admission or triggers spilling
/// exactly like local pressure does, without changing any output bit.
#[derive(Debug, Default)]
pub struct MemoryBudget {
    /// Budget in bytes; `None` is unbounded (the ledger still tracks the peak).
    capacity: Option<u64>,
    used: AtomicU64,
    peak: AtomicU64,
    /// Upstream ledger every charge/release is mirrored into.
    parent: Option<Arc<MemoryBudget>>,
}

impl MemoryBudget {
    /// A budget of `capacity_bytes`.
    pub fn bounded(capacity_bytes: u64) -> MemoryBudget {
        MemoryBudget {
            capacity: Some(capacity_bytes),
            ..MemoryBudget::default()
        }
    }

    /// An unlimited budget that still records usage and the peak.
    pub fn unbounded() -> MemoryBudget {
        MemoryBudget::default()
    }

    /// Rebinds this budget as a child of `parent`: every subsequent charge and
    /// release is mirrored into the parent ledger, and overdraft checks
    /// consider both capacities.
    pub fn with_parent(mut self, parent: Arc<MemoryBudget>) -> MemoryBudget {
        self.parent = Some(parent);
        self
    }

    /// The configured capacity, or `None` when unbounded.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// Charges `bytes` as resident, updating the peak. Returns the new total.
    /// Chained parents are charged too.
    pub fn charge(&self, bytes: u64) -> u64 {
        if let Some(parent) = &self.parent {
            parent.charge(bytes);
        }
        let now = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Releases `bytes` previously charged (saturating at zero). Chained
    /// parents see the release too.
    pub fn release(&self, bytes: u64) {
        if let Some(parent) = &self.parent {
            parent.release(bytes);
        }
        // fetch_update never fails with Some; saturate rather than underflow so a
        // double-release stays a bookkeeping blemish instead of a wrapping bug.
        let _ = self
            .used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                Some(used.saturating_sub(bytes))
            });
    }

    /// Bytes currently charged.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of charged bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// `true` when the charged bytes exceed a bounded capacity, either this
    /// ledger's own or (for chained budgets) any ancestor's.
    pub fn is_over(&self) -> bool {
        self.capacity.is_some_and(|cap| self.used() > cap)
            || self.parent.as_ref().is_some_and(|p| p.is_over())
    }

    /// `true` if charging `bytes` more would exceed a bounded capacity, this
    /// ledger's own or any ancestor's.
    pub fn would_exceed(&self, bytes: u64) -> bool {
        self.capacity
            .is_some_and(|cap| self.used().saturating_add(bytes) > cap)
            || self.parent.as_ref().is_some_and(|p| p.would_exceed(bytes))
    }
}

/// Peak-memory model for one assembly run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Bytes of packed input reads held in memory.
    pub reads_bytes: u64,
    /// Bytes of extracted (non-distinct) k-mers during counting (8 B per packed k-mer).
    pub kmer_buffer_bytes: u64,
    /// Bytes of MacroNodes after graph construction.
    pub macronode_bytes: u64,
    /// Peak bytes during Iterative Compaction with the §4.5 pointer/deferred-deletion
    /// optimizations applied.
    pub compaction_peak_bytes: u64,
    /// Peak bytes during Iterative Compaction **without** those optimizations
    /// (MacroNodes copied by value on every call; the paper measures this as 1.4×).
    pub unoptimized_compaction_peak_bytes: u64,
}

/// Factor by which the unoptimized implementation inflates the compaction-phase peak
/// (528 GB → 379 GB for the 10 % human batch in §4.5 ⇒ ≈ 1.39×).
pub const UNOPTIMIZED_EXPANSION_FACTOR: f64 = 1.4;

impl MemoryFootprint {
    /// Builds the footprint model from observed workload quantities.
    pub fn from_workload(
        read_bases: u64,
        total_kmers: u64,
        macronode_bytes: u64,
    ) -> MemoryFootprint {
        let reads_bytes = read_bases.div_ceil(4);
        let kmer_buffer_bytes = total_kmers * 8;
        // During compaction the graph plus in-flight TransferNodes and bookkeeping is
        // the live set; transfers are a small fraction of node bytes.
        let compaction_peak_bytes = macronode_bytes + macronode_bytes / 8;
        let unoptimized_compaction_peak_bytes =
            (compaction_peak_bytes as f64 * UNOPTIMIZED_EXPANSION_FACTOR) as u64;
        MemoryFootprint {
            reads_bytes,
            kmer_buffer_bytes,
            macronode_bytes,
            compaction_peak_bytes,
            unoptimized_compaction_peak_bytes,
        }
    }

    /// Peak bytes across all phases with the software optimizations applied.
    pub fn peak_bytes(&self) -> u64 {
        self.reads_bytes
            .max(self.kmer_buffer_bytes + self.reads_bytes)
            .max(self.compaction_peak_bytes)
    }

    /// Peak bytes without the §4.5 memory-management optimizations.
    pub fn unoptimized_peak_bytes(&self) -> u64 {
        self.reads_bytes
            .max(self.kmer_buffer_bytes + self.reads_bytes)
            .max(self.unoptimized_compaction_peak_bytes)
    }

    /// Expansion of the peak footprint relative to the packed input reads
    /// (the paper reports 13–25× relative to the on-disk input).
    pub fn expansion_factor(&self) -> f64 {
        if self.reads_bytes == 0 {
            return 0.0;
        }
        self.peak_bytes() as f64 / self.reads_bytes as f64
    }

    /// Footprint if the input were split into `1 / batch_fraction` equal batches and
    /// processed sequentially (§4.4): per-phase quantities scale with the fraction,
    /// while the merged compacted graphs (tens of MB in the paper) are negligible and
    /// folded into the per-batch peak.
    pub fn with_batching(&self, batch_fraction: f64) -> MemoryFootprint {
        let f = batch_fraction.clamp(0.0, 1.0);
        let scale = |v: u64| (v as f64 * f) as u64;
        MemoryFootprint {
            reads_bytes: scale(self.reads_bytes),
            kmer_buffer_bytes: scale(self.kmer_buffer_bytes),
            macronode_bytes: scale(self.macronode_bytes),
            compaction_peak_bytes: scale(self.compaction_peak_bytes),
            unoptimized_compaction_peak_bytes: scale(self.unoptimized_compaction_peak_bytes),
        }
    }

    /// Combined reduction factor of batching plus the software optimizations, relative
    /// to the unoptimized, unbatched footprint (the paper's headline 14×).
    pub fn reduction_factor_vs_unoptimized(&self, batch_fraction: f64) -> f64 {
        let batched = self.with_batching(batch_fraction);
        if batched.peak_bytes() == 0 {
            return 0.0;
        }
        self.unoptimized_peak_bytes() as f64 / batched.peak_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MemoryFootprint {
        // 1 Gbase of reads, 1 G k-mers, 20 GB of MacroNodes — proportions in line with
        // the paper's 10 % human batch (38 GB reads → 379 GB peak).
        MemoryFootprint::from_workload(1_000_000_000, 1_000_000_000, 20_000_000_000)
    }

    #[test]
    fn peak_is_dominated_by_compaction_phase() {
        let fp = sample();
        assert_eq!(fp.peak_bytes(), fp.compaction_peak_bytes);
        assert!(fp.unoptimized_peak_bytes() > fp.peak_bytes());
    }

    #[test]
    fn expansion_factor_is_an_order_of_magnitude() {
        let fp = sample();
        let factor = fp.expansion_factor();
        assert!(factor > 10.0 && factor < 200.0, "factor = {factor}");
    }

    #[test]
    fn unoptimized_costs_about_1_4x() {
        let fp = sample();
        let ratio = fp.unoptimized_compaction_peak_bytes as f64 / fp.compaction_peak_bytes as f64;
        assert!((ratio - UNOPTIMIZED_EXPANSION_FACTOR).abs() < 0.01);
    }

    #[test]
    fn batching_scales_the_footprint() {
        let fp = sample();
        let tenth = fp.with_batching(0.1);
        assert!(tenth.peak_bytes() < fp.peak_bytes() / 9);
        assert!(tenth.peak_bytes() > fp.peak_bytes() / 11);
    }

    #[test]
    fn combined_reduction_reaches_the_paper_magnitude() {
        // 1.4× (software) × 10× (batching) ≈ 14×.
        let fp = sample();
        let reduction = fp.reduction_factor_vs_unoptimized(0.1);
        assert!(
            reduction > 12.0 && reduction < 16.0,
            "reduction = {reduction}"
        );
    }

    #[test]
    fn empty_workload_is_safe() {
        let fp = MemoryFootprint::from_workload(0, 0, 0);
        assert_eq!(fp.peak_bytes(), 0);
        assert_eq!(fp.expansion_factor(), 0.0);
        assert_eq!(fp.reduction_factor_vs_unoptimized(0.1), 0.0);
    }

    #[test]
    fn budget_tracks_usage_peak_and_overdraft() {
        let budget = MemoryBudget::bounded(100);
        assert_eq!(budget.capacity(), Some(100));
        assert!(!budget.is_over());
        assert_eq!(budget.charge(60), 60);
        assert!(!budget.is_over());
        assert!(budget.would_exceed(41));
        assert!(!budget.would_exceed(40));
        assert_eq!(budget.charge(60), 120);
        assert!(budget.is_over());
        assert_eq!(budget.peak_bytes(), 120);
        budget.release(80);
        assert_eq!(budget.used(), 40);
        assert!(!budget.is_over());
        // The peak survives releases.
        assert_eq!(budget.peak_bytes(), 120);
        // Over-release saturates instead of wrapping.
        budget.release(1_000);
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn chained_budget_mirrors_into_parent() {
        let global = Arc::new(MemoryBudget::bounded(100));
        let child = MemoryBudget::unbounded().with_parent(Arc::clone(&global));
        child.charge(60);
        assert_eq!(child.used(), 60);
        assert_eq!(global.used(), 60);
        // The child itself is unbounded, but the parent's cap makes it report
        // overdraft once the *global* ledger is saturated.
        assert!(!child.is_over());
        assert!(child.would_exceed(41));
        global.charge(50);
        assert!(child.is_over());
        child.release(60);
        assert_eq!(child.used(), 0);
        assert_eq!(global.used(), 50);
        assert!(!child.is_over());
        // Peaks are tracked per ledger.
        assert_eq!(child.peak_bytes(), 60);
        assert_eq!(global.peak_bytes(), 110);
    }

    #[test]
    fn unbounded_budget_never_overdraws() {
        let budget = MemoryBudget::unbounded();
        assert_eq!(budget.capacity(), None);
        budget.charge(u64::MAX / 2);
        assert!(!budget.is_over());
        assert!(!budget.would_exceed(u64::MAX / 2));
        assert_eq!(budget.peak_bytes(), u64::MAX / 2);
    }
}
