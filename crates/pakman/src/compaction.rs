//! Iterative Compaction (assembly step D, Figs. 2 and 4) — the phase NMP-PaK
//! accelerates.
//!
//! Every iteration performs, for each alive MacroNode, the three pipeline stages the
//! paper maps onto its processing elements (Fig. 10):
//!
//! 1. **P1 — invalidation check**: compute the (k-1)-mers of every neighbour and mark
//!    the node for invalidation if its own (k-1)-mer is strictly the lexicographically
//!    largest (and the node is fully interior, so no contig endpoint is lost);
//! 2. **P2 — TransferNode extraction**: for each through-path of an invalidated node,
//!    build the TransferNodes destined for its predecessor and successor;
//! 3. **P3 — routing and update**: deliver each TransferNode to its destination node
//!    and splice the carried extension into the matching path.
//!
//! Iterations repeat until the alive node count drops below the configured threshold,
//! no node can be invalidated, or the iteration cap is hit.

use crate::config::PakmanConfig;
use crate::graph::PakGraph;
use crate::macronode::MacroNode;
use crate::trace::{CompactionTrace, IterationTrace, NodeCheck, TransferEvent, UpdateEvent};
use crate::transfer::{TransferNode, TransferSide};
use serde::{Deserialize, Serialize};

/// Histogram of MacroNode sizes with the power-of-two buckets of Fig. 7
/// (≤256 B, 512 B, 1 KB, 2 KB, 4 KB, 8 KB, 16 KB, 32 KB, >32 KB).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeHistogram {
    /// Count per bucket; bucket `i` covers `(bound[i-1], bound[i]]` with the bounds
    /// given by [`SizeHistogram::BUCKET_BOUNDS`], and the final bucket is overflow.
    counts: Vec<usize>,
}

impl SizeHistogram {
    /// Upper bounds (inclusive) of the non-overflow buckets, in bytes.
    pub const BUCKET_BOUNDS: [usize; 8] = [256, 512, 1024, 2048, 4096, 8192, 16384, 32768];

    /// Creates an empty histogram.
    pub fn new() -> Self {
        SizeHistogram {
            counts: vec![0; Self::BUCKET_BOUNDS.len() + 1],
        }
    }

    /// Records one node of `size` bytes.
    pub fn record(&mut self, size: usize) {
        let idx = Self::BUCKET_BOUNDS
            .iter()
            .position(|&bound| size <= bound)
            .unwrap_or(Self::BUCKET_BOUNDS.len());
        self.counts[idx] += 1;
    }

    /// Per-bucket counts: one entry per bound plus a final overflow bucket.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total nodes recorded.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fraction of recorded nodes whose size exceeds `threshold` bytes.
    ///
    /// This is the quantity plotted in Fig. 8 (proportion of MacroNodes larger than
    /// 1/2/4/8 KB) and the basis of the hybrid CPU-NMP offload decision.
    pub fn fraction_exceeding(&self, threshold: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut exceeding = 0usize;
        for (i, &count) in self.counts.iter().enumerate() {
            let lower = if i == 0 {
                0
            } else {
                Self::BUCKET_BOUNDS[i - 1]
            };
            if lower >= threshold {
                exceeding += count;
            }
        }
        exceeding as f64 / total as f64
    }
}

/// Per-iteration compaction statistics (drives Figs. 7 and 8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Alive nodes at the start of the iteration.
    pub alive_before: usize,
    /// Nodes invalidated during the iteration.
    pub invalidated: usize,
    /// TransferNodes routed.
    pub transfers: usize,
    /// TransferNodes whose destination or matching extension could not be found
    /// (wiring-heuristic mismatches); their flow is dropped.
    pub unmatched_transfers: usize,
    /// MacroNode size distribution at the start of the iteration.
    pub histogram: SizeHistogram,
}

/// Whole-run compaction statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CompactionStats {
    /// Alive nodes before the first iteration.
    pub initial_nodes: usize,
    /// Alive nodes after the last iteration.
    pub final_nodes: usize,
    /// Per-iteration statistics.
    pub iterations: Vec<IterationStats>,
    /// Total TransferNodes routed across the run.
    pub total_transfers: usize,
    /// `true` if the run stopped because the node threshold was reached or no further
    /// invalidation was possible (as opposed to hitting the iteration cap).
    pub converged: bool,
}

impl CompactionStats {
    /// Number of iterations executed.
    pub fn iteration_count(&self) -> usize {
        self.iterations.len()
    }

    /// Overall node reduction factor (initial / final); `inf` if everything compacted.
    pub fn reduction_factor(&self) -> f64 {
        if self.final_nodes == 0 {
            f64::INFINITY
        } else {
            self.initial_nodes as f64 / self.final_nodes as f64
        }
    }
}

/// Result of running Iterative Compaction.
#[derive(Debug, Clone, Default)]
pub struct CompactionOutcome {
    /// Whole-run statistics.
    pub stats: CompactionStats,
    /// The access trace, when [`PakmanConfig::record_trace`] was set.
    pub trace: Option<CompactionTrace>,
}

/// Runs Iterative Compaction on `graph` in place.
///
/// The check phase (P1) is parallelised over `config.threads` worker threads — the
/// MacroNode-level parallelisation described in §4.5 — while TransferNode application
/// is serialised per destination (the software equivalent of the per-MacroNode
/// `omp_set_lock` the paper uses).
pub fn compact(graph: &mut PakGraph, config: &PakmanConfig) -> CompactionOutcome {
    let initial_nodes = graph.alive_count();
    let mut trace = config.record_trace.then(|| {
        let mut sizes = vec![0usize; graph.slot_count()];
        for (slot, node) in graph.iter_alive() {
            sizes[slot] = node.size_bytes();
        }
        CompactionTrace::new(graph.slot_count(), sizes)
    });

    let mut stats = CompactionStats {
        initial_nodes,
        final_nodes: initial_nodes,
        ..CompactionStats::default()
    };

    for iteration in 0..config.max_compaction_iterations {
        let alive_before = graph.alive_count();
        if alive_before <= config.compaction_node_threshold {
            stats.converged = true;
            break;
        }

        // ---- Stage P1: invalidation check (parallel, read-only) ----
        let checks = run_invalidation_checks(graph, config.threads);
        let mut histogram = SizeHistogram::new();
        for check in &checks {
            histogram.record(check.size_bytes);
        }
        let invalidated_slots: Vec<usize> = checks
            .iter()
            .filter(|c| c.invalidated)
            .map(|c| c.slot)
            .collect();

        if invalidated_slots.is_empty() {
            stats.iterations.push(IterationStats {
                iteration,
                alive_before,
                invalidated: 0,
                transfers: 0,
                unmatched_transfers: 0,
                histogram,
            });
            if let Some(trace) = trace.as_mut() {
                trace.iterations.push(IterationTrace {
                    checks,
                    transfers: Vec::new(),
                    updates: Vec::new(),
                });
            }
            stats.converged = true;
            break;
        }

        // ---- Stage P2: TransferNode extraction, then node invalidation ----
        let mut transfers: Vec<(usize, TransferNode)> = Vec::new();
        for &slot in &invalidated_slots {
            let node = graph.node(slot).expect("invalidated slot was alive");
            for t in TransferNode::extract_all(node) {
                transfers.push((slot, t));
            }
            graph.invalidate(slot);
        }

        // ---- Stage P3: routing and destination update ----
        // Destinations are resolved through the graph's sorted-rank index (binary
        // search over the packed (k-1)-mer layout) — no hashing per TransferNode.
        // Touched destinations are tracked with a plain per-slot bitmap in
        // first-touch order, which also makes the recorded trace deterministic.
        let mut transfer_events = Vec::with_capacity(transfers.len());
        let mut touched = vec![false; graph.slot_count()];
        let mut touched_order: Vec<usize> = Vec::new();
        let mut unmatched = 0usize;
        for (source_slot, transfer) in &transfers {
            match graph.index_of(&transfer.destination) {
                Some(dest_slot) => {
                    transfer_events.push(TransferEvent {
                        source_slot: *source_slot,
                        dest_slot,
                        size_bytes: transfer.size_bytes(),
                    });
                    let dest = graph.node_mut(dest_slot).expect("destination is alive");
                    if apply_transfer(dest, transfer) {
                        if !touched[dest_slot] {
                            touched[dest_slot] = true;
                            touched_order.push(dest_slot);
                        }
                    } else {
                        unmatched += 1;
                    }
                }
                None => unmatched += 1,
            }
        }

        let updates: Vec<UpdateEvent> = touched_order
            .iter()
            .map(|&dest_slot| UpdateEvent {
                dest_slot,
                size_bytes: graph
                    .node(dest_slot)
                    .map(MacroNode::size_bytes)
                    .unwrap_or(0),
            })
            .collect();

        stats.total_transfers += transfers.len();
        stats.iterations.push(IterationStats {
            iteration,
            alive_before,
            invalidated: invalidated_slots.len(),
            transfers: transfers.len(),
            unmatched_transfers: unmatched,
            histogram,
        });
        if let Some(trace) = trace.as_mut() {
            trace.iterations.push(IterationTrace {
                checks,
                transfers: transfer_events,
                updates,
            });
        }
    }

    stats.final_nodes = graph.alive_count();
    if graph.alive_count() <= config.compaction_node_threshold {
        stats.converged = true;
    }
    CompactionOutcome { stats, trace }
}

/// Runs the invalidation check for every alive node, in parallel.
fn run_invalidation_checks(graph: &PakGraph, threads: usize) -> Vec<NodeCheck> {
    let slots = graph.alive_slots();
    let threads = threads.max(1).min(slots.len().max(1));
    if threads <= 1 || slots.len() < 64 {
        return slots.iter().map(|&slot| check_one(graph, slot)).collect();
    }

    let chunk = slots.len().div_ceil(threads);
    let mut results: Vec<NodeCheck> = Vec::with_capacity(slots.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in slots.chunks(chunk) {
            handles.push(scope.spawn(move || {
                part.iter()
                    .map(|&slot| check_one(graph, slot))
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            results.extend(handle.join().expect("invalidation-check worker panicked"));
        }
    });
    results
}

fn check_one(graph: &PakGraph, slot: usize) -> NodeCheck {
    let node = graph.node(slot).expect("slot is alive");
    NodeCheck {
        slot,
        size_bytes: node.size_bytes(),
        invalidated: is_invalidation_target(graph, node),
    }
}

/// Stage P1 decision: the node is invalidated if it is fully interior and its
/// (k-1)-mer is strictly the lexicographically largest among its neighbours
/// (Fig. 4 (b)). The strictness guarantees two adjacent nodes are never invalidated in
/// the same iteration. A neighbour that no longer exists in the graph (it was pruned,
/// or its wiring went stale after an earlier invalidation) does not block the check;
/// the corresponding TransferNode is simply dropped and counted as unmatched.
pub fn is_invalidation_target(graph: &PakGraph, node: &MacroNode) -> bool {
    if !node.is_fully_interior() {
        return false;
    }
    let own = node.k1mer();
    let mut neighbour_count = 0usize;
    for neighbour in node
        .predecessor_k1mers()
        .into_iter()
        .chain(node.successor_k1mers())
    {
        // Every neighbour must still be alive: invalidating a node whose wiring has
        // gone stale (a residual path pointing at an already-removed neighbour) would
        // drop its TransferNodes and lose assembled sequence, so such nodes are kept.
        // This is conservative — compaction stops earlier than PaKman's — but it keeps
        // the walk lossless; see DESIGN.md.
        if !graph.contains(&neighbour) {
            return false;
        }
        neighbour_count += 1;
        if neighbour >= own {
            return false;
        }
    }
    neighbour_count > 0
}

/// Applies one TransferNode to its destination node, splitting paths as necessary so
/// that exactly `transfer.count` units of flow receive the new extension. Returns
/// `false` if no matching extension was found.
fn apply_transfer(dest: &mut MacroNode, transfer: &TransferNode) -> bool {
    let mut remaining = transfer.count;
    let mut new_paths = Vec::new();
    let paths = dest.paths_mut();

    for path in paths.iter_mut() {
        if remaining == 0 {
            break;
        }
        let matches = match transfer.side {
            TransferSide::Predecessor => path.suffix.as_ref() == Some(&transfer.match_ext),
            TransferSide::Successor => path.prefix.as_ref() == Some(&transfer.match_ext),
        };
        if !matches {
            continue;
        }
        let take = path.count.min(remaining);
        if take == path.count {
            // Whole path is redirected.
            match transfer.side {
                TransferSide::Predecessor => path.suffix = Some(transfer.new_ext.clone()),
                TransferSide::Successor => path.prefix = Some(transfer.new_ext.clone()),
            }
        } else {
            // Split: `take` units get the new extension, the rest keeps the old one.
            path.count -= take;
            let mut split = path.clone();
            split.count = take;
            match transfer.side {
                TransferSide::Predecessor => split.suffix = Some(transfer.new_ext.clone()),
                TransferSide::Successor => split.prefix = Some(transfer.new_ext.clone()),
            }
            new_paths.push(split);
        }
        remaining -= take;
    }

    paths.extend(new_paths);
    remaining < transfer.count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmer_count::{count_kmers, KmerCounterConfig};
    use nmp_pak_genome::{DnaString, Kmer, SequencingRead};

    fn graph_from_reads(reads: &[&str], k: usize) -> PakGraph {
        let reads: Vec<SequencingRead> = reads
            .iter()
            .enumerate()
            .map(|(i, s)| SequencingRead::new(format!("r{i}"), s.parse::<DnaString>().unwrap()))
            .collect();
        let (counted, _) = count_kmers(
            &reads,
            KmerCounterConfig {
                k,
                min_count: 1,
                threads: 1,
            },
        )
        .unwrap();
        PakGraph::from_counted_kmers(&counted, k, 1)
    }

    fn compact_config(threshold: usize) -> PakmanConfig {
        PakmanConfig {
            compaction_node_threshold: threshold,
            threads: 1,
            record_trace: true,
            ..PakmanConfig::default()
        }
    }

    #[test]
    fn histogram_buckets_and_fractions() {
        let mut h = SizeHistogram::new();
        for size in [100, 300, 600, 1500, 9000, 40_000] {
            h.record(size);
        }
        assert_eq!(h.total(), 6);
        // Sizes > 1 KB: 1500, 9000, 40000 → 3/6. (600 sits in the 512–1024 bucket.)
        assert!((h.fraction_exceeding(1024) - 0.5).abs() < 1e-12);
        // Sizes > 8 KB: 9000 and 40000 → 2/6.
        assert!((h.fraction_exceeding(8192) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.counts().len(), SizeHistogram::BUCKET_BOUNDS.len() + 1);
    }

    #[test]
    fn compaction_reduces_node_count_on_a_chain() {
        let mut graph = graph_from_reads(&["ACGTACCTGATCAGTTGCAAC"], 5);
        let before = graph.alive_count();
        let outcome = compact(&mut graph, &compact_config(2));
        let after = graph.alive_count();
        assert!(after < before, "compaction should remove interior nodes");
        assert_eq!(outcome.stats.initial_nodes, before);
        assert_eq!(outcome.stats.final_nodes, after);
        assert!(outcome.stats.converged);
        assert!(outcome.stats.iteration_count() >= 1);
    }

    #[test]
    fn compaction_preserves_spelled_sequence_on_a_chain() {
        // After full compaction of a linear chain, walking from the terminal-start node
        // must reproduce the original read.
        let read = "ACGTACCTGATCAGTTGCAAC";
        let mut graph = graph_from_reads(&[read], 5);
        compact(&mut graph, &compact_config(0));
        let contigs = crate::walk::generate_contigs(&graph, 0);
        assert!(
            contigs.iter().any(|c| c.sequence.to_string() == read),
            "expected contig {read}, got {:?}",
            contigs
                .iter()
                .map(|c| c.sequence.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn adjacent_nodes_are_never_both_invalidated() {
        let mut graph = graph_from_reads(&["ACGTACCTGATCAGTTGCAACGGTT"], 6);
        let cfg = compact_config(0);
        let outcome = compact(&mut graph, &cfg);
        let trace = outcome.trace.expect("trace recorded");
        for it in &trace.iterations {
            let invalidated: std::collections::HashSet<usize> = it
                .checks
                .iter()
                .filter(|c| c.invalidated)
                .map(|c| c.slot)
                .collect();
            // No transfer may target an invalidated slot: destinations are neighbours,
            // and neighbours of an invalidated node must stay alive this iteration.
            for t in &it.transfers {
                assert!(!invalidated.contains(&t.dest_slot));
            }
        }
    }

    #[test]
    fn terminal_nodes_are_not_invalidated() {
        let graph = graph_from_reads(&["ACGTACCTG"], 5);
        for (_, node) in graph.iter_alive() {
            if !node.is_fully_interior() {
                assert!(!is_invalidation_target(&graph, node));
            }
        }
    }

    #[test]
    fn lexicographically_largest_interior_node_is_selected() {
        // Read "ACGTTAC", k = 5 gives (k-1)-mer chain ACGT → CGTT → GTTA → TTAC.
        // Interior nodes are CGTT and GTTA. Under the paper's A<C<T<G ordering,
        // GTTA is larger than both of its neighbours (CGTT and TTAC), so it is the
        // invalidation target; CGTT is not (its successor GTTA is larger).
        let graph = graph_from_reads(&["ACGTTAC"], 5);
        let gtta = graph
            .node_by_k1mer(&Kmer::from_ascii("GTTA").unwrap())
            .unwrap();
        let cgtt = graph
            .node_by_k1mer(&Kmer::from_ascii("CGTT").unwrap())
            .unwrap();
        assert!(is_invalidation_target(&graph, gtta));
        assert!(!is_invalidation_target(&graph, cgtt));

        // Compacting removes GTTA and routes its content to CGTT and TTAC
        // (two transfers for its single through-path), after which no further
        // interior node dominates its neighbours.
        let mut graph = graph;
        let outcome = compact(&mut graph, &compact_config(0));
        assert_eq!(outcome.stats.total_transfers, 2);
        assert!(outcome.stats.converged);
        assert_eq!(graph.alive_count(), 3);
        assert!(!graph.contains(&Kmer::from_ascii("GTTA").unwrap()));
        // CGTT's suffix grew from "A" to "AC".
        let cgtt = graph
            .node_by_k1mer(&Kmer::from_ascii("CGTT").unwrap())
            .unwrap();
        assert_eq!(cgtt.suffix_extensions()[0].0.to_string(), "AC");
    }

    #[test]
    fn trace_records_checks_transfers_and_updates() {
        let mut graph = graph_from_reads(&["ACGTACCTGATCAGTTGCAAC"], 5);
        let outcome = compact(&mut graph, &compact_config(2));
        let trace = outcome.trace.expect("trace requested");
        assert_eq!(trace.slot_count, trace.initial_sizes.len());
        assert!(trace.iteration_count() >= 1);
        let total_invalidated = trace.total_invalidated();
        assert!(total_invalidated > 0);
        // Every invalidated interior node produces two transfers per path.
        assert!(trace.total_transfers() >= total_invalidated);
        // Updates reference alive-at-the-time destinations with nonzero sizes.
        for it in &trace.iterations {
            for u in &it.updates {
                assert!(u.size_bytes > 0);
                assert!(u.dest_slot < trace.slot_count);
            }
        }
    }

    #[test]
    fn iteration_cap_is_respected() {
        let mut graph = graph_from_reads(&["ACGTACCTGATCAGTTGCAACGGTTACCAGT"], 5);
        let cfg = PakmanConfig {
            compaction_node_threshold: 0,
            max_compaction_iterations: 1,
            threads: 1,
            ..PakmanConfig::default()
        };
        let outcome = compact(&mut graph, &cfg);
        assert!(outcome.stats.iteration_count() <= 1);
    }

    #[test]
    fn parallel_and_serial_checks_agree() {
        let graph = graph_from_reads(&["ACGTACCTGATCAGTTGCAACGGTTACCAGTACGATC"], 6);
        let serial = run_invalidation_checks(&graph, 1);
        let mut parallel = run_invalidation_checks(&graph, 4);
        parallel.sort_by_key(|c| c.slot);
        let mut serial_sorted = serial.clone();
        serial_sorted.sort_by_key(|c| c.slot);
        assert_eq!(serial_sorted, parallel);
    }

    #[test]
    fn reduction_factor_reported() {
        let mut graph = graph_from_reads(&["ACGTACCTGATCAGTTGCAAC"], 5);
        let outcome = compact(&mut graph, &compact_config(2));
        assert!(outcome.stats.reduction_factor() > 1.0);
    }
}
