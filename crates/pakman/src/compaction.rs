//! Iterative Compaction (assembly step D, Figs. 2 and 4) — the phase NMP-PaK
//! accelerates.
//!
//! Every iteration performs the three pipeline stages the paper maps onto its
//! processing elements (Fig. 10), each parallelised over
//! [`PakmanConfig::threads`] scoped worker threads (§4.5):
//!
//! 1. **P1 — invalidation check**: compute the (k-1)-mers of every neighbour and mark
//!    the node for invalidation if its own (k-1)-mer is strictly the lexicographically
//!    largest (and the node is fully interior, so no contig endpoint is lost). Under
//!    [`CompactionMode::Frontier`] (the default) only *dirty* nodes — destinations of
//!    the previous iteration's TransferNodes — are re-evaluated after iteration 0;
//!    every other alive node's cached verdict still stands (see DESIGN.md for the
//!    invariant proof).
//! 2. **P2 — TransferNode extraction**: for each through-path of an invalidated node,
//!    build the TransferNodes destined for its predecessor and successor. Extraction
//!    runs on scoped threads into pre-allocated per-thread buffers that are merged in
//!    slot order, so the transfer stream keeps the canonical serial order.
//! 3. **P3 — routing and update**: resolve each destination through the sorted-rank
//!    index in parallel, then shard the transfers by destination slot into disjoint
//!    contiguous slot ranges and apply the shards concurrently (`split_at_mut` over
//!    the slot vector — the software equivalent of the paper's per-MacroNode
//!    `omp_set_lock`). Per-destination application order stays canonical, so the
//!    result is bit-identical to the serial path.
//!
//! All per-iteration buffers live in a reusable [`CompactionScratch`], so the
//! untraced hot loop performs no per-iteration reallocation. Iterations repeat until
//! the alive node count drops below the configured threshold, no node can be
//! invalidated, or the iteration cap is hit. Both scan modes, every thread count, and
//! the serial fallback produce bit-identical statistics, traces, and contigs — the
//! determinism contract of DESIGN.md.

use crate::config::{CompactionMode, PakmanConfig};
use crate::control::RunControl;
use crate::error::PakmanError;
use crate::graph::PakGraph;
use crate::macronode::MacroNode;
use crate::trace::{CompactionTrace, IterationTrace, NodeCheck, TransferEvent, UpdateEvent};
use crate::transfer::{TransferNode, TransferSide};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Histogram of MacroNode sizes with the power-of-two buckets of Fig. 7
/// (≤256 B, 512 B, 1 KB, 2 KB, 4 KB, 8 KB, 16 KB, 32 KB, >32 KB).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeHistogram {
    /// Count per bucket; bucket `i` covers `(bound[i-1], bound[i]]` with the bounds
    /// given by [`SizeHistogram::BUCKET_BOUNDS`], and the final bucket is overflow.
    counts: Vec<usize>,
}

impl SizeHistogram {
    /// Upper bounds (inclusive) of the non-overflow buckets, in bytes.
    pub const BUCKET_BOUNDS: [usize; 8] = [256, 512, 1024, 2048, 4096, 8192, 16384, 32768];

    /// Creates an empty histogram.
    pub fn new() -> Self {
        SizeHistogram {
            counts: vec![0; Self::BUCKET_BOUNDS.len() + 1],
        }
    }

    /// Records one node of `size` bytes.
    pub fn record(&mut self, size: usize) {
        self.counts[Self::bucket_of(size)] += 1;
    }

    /// Removes one previously [`SizeHistogram::record`]ed node of `size` bytes —
    /// the incremental-census counterpart used when a node's size changes or the
    /// node is invalidated.
    pub(crate) fn unrecord(&mut self, size: usize) {
        let idx = Self::bucket_of(size);
        debug_assert!(self.counts[idx] > 0, "unrecord of an empty bucket");
        self.counts[idx] -= 1;
    }

    /// Bucket index for a node of `size` bytes.
    fn bucket_of(size: usize) -> usize {
        Self::BUCKET_BOUNDS
            .iter()
            .position(|&bound| size <= bound)
            .unwrap_or(Self::BUCKET_BOUNDS.len())
    }

    /// Per-bucket counts: one entry per bound plus a final overflow bucket.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total nodes recorded.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fraction of recorded nodes whose size exceeds `threshold` bytes.
    ///
    /// This is the quantity plotted in Fig. 8 (proportion of MacroNodes larger than
    /// 1/2/4/8 KB) and the basis of the hybrid CPU-NMP offload decision.
    pub fn fraction_exceeding(&self, threshold: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut exceeding = 0usize;
        for (i, &count) in self.counts.iter().enumerate() {
            let lower = if i == 0 {
                0
            } else {
                Self::BUCKET_BOUNDS[i - 1]
            };
            if lower >= threshold {
                exceeding += count;
            }
        }
        exceeding as f64 / total as f64
    }
}

/// Per-iteration compaction statistics (drives Figs. 7 and 8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Alive nodes at the start of the iteration.
    pub alive_before: usize,
    /// Nodes invalidated during the iteration.
    pub invalidated: usize,
    /// TransferNodes routed.
    pub transfers: usize,
    /// TransferNodes whose destination or matching extension could not be found
    /// (wiring-heuristic mismatches); their flow is dropped.
    pub unmatched_transfers: usize,
    /// MacroNode size distribution at the start of the iteration.
    pub histogram: SizeHistogram,
}

/// Whole-run compaction statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CompactionStats {
    /// Alive nodes before the first iteration.
    pub initial_nodes: usize,
    /// Alive nodes after the last iteration.
    pub final_nodes: usize,
    /// Per-iteration statistics.
    pub iterations: Vec<IterationStats>,
    /// Total TransferNodes routed across the run.
    pub total_transfers: usize,
    /// `true` if the run stopped because the node threshold was reached or no further
    /// invalidation was possible (as opposed to hitting the iteration cap).
    pub converged: bool,
}

impl CompactionStats {
    /// Number of iterations executed.
    pub fn iteration_count(&self) -> usize {
        self.iterations.len()
    }

    /// Overall node reduction factor (initial / final); `inf` if everything compacted.
    pub fn reduction_factor(&self) -> f64 {
        if self.final_nodes == 0 {
            f64::INFINITY
        } else {
            self.initial_nodes as f64 / self.final_nodes as f64
        }
    }
}

/// Wall-clock and work profile of one compaction iteration, recorded by
/// [`compact`] alongside the (bit-identity-checked) statistics. Timings vary run
/// to run; the node counts are deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct IterationProfile {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Wall-clock of stage P1 (invalidation checks).
    pub p1: Duration,
    /// Wall-clock of stage P2 (TransferNode extraction + invalidation).
    pub p2: Duration,
    /// Wall-clock of stage P3 (routing and destination update).
    pub p3: Duration,
    /// Invalidation predicates actually evaluated this iteration (the frontier
    /// re-check set; equals `alive_nodes` under [`CompactionMode::FullScan`]).
    pub checked_nodes: usize,
    /// Alive nodes at the start of the iteration — what a full scan evaluates.
    pub alive_nodes: usize,
}

/// Per-iteration profile of a whole compaction run (drives the
/// `experiments compaction` benchmark and the `BENCH_pipeline.json` entry).
#[derive(Debug, Clone, Default)]
pub struct CompactionProfile {
    /// One entry per executed iteration.
    pub iterations: Vec<IterationProfile>,
}

impl CompactionProfile {
    /// Total invalidation predicates evaluated across the run.
    pub fn total_checked(&self) -> usize {
        self.iterations.iter().map(|i| i.checked_nodes).sum()
    }

    /// Total predicates a full scan would have evaluated (Σ alive at each
    /// iteration start).
    pub fn total_full_scan_checks(&self) -> usize {
        self.iterations.iter().map(|i| i.alive_nodes).sum()
    }

    /// Summed wall-clock of the three stages: `(P1, P2, P3)`.
    pub fn stage_totals(&self) -> (Duration, Duration, Duration) {
        self.iterations.iter().fold(
            (Duration::ZERO, Duration::ZERO, Duration::ZERO),
            |(p1, p2, p3), it| (p1 + it.p1, p2 + it.p2, p3 + it.p3),
        )
    }
}

/// Result of running Iterative Compaction.
#[derive(Debug, Clone, Default)]
pub struct CompactionOutcome {
    /// Whole-run statistics.
    pub stats: CompactionStats,
    /// The access trace, when [`PakmanConfig::record_trace`] was set.
    pub trace: Option<CompactionTrace>,
    /// Per-iteration stage timings and checked-node counts (always recorded; two
    /// `Instant` reads per stage per iteration).
    pub profile: CompactionProfile,
}

/// Reusable scratch state for [`compact`]: every buffer the per-iteration loop
/// needs, allocated once and carried across iterations — and across runs when
/// callers hold onto it via [`compact_with_scratch`]. This is §4.5's
/// "pre-allocated per-thread buffers" applied to compaction: the untraced hot
/// loop performs no per-iteration heap allocation once the buffers have grown to
/// their steady-state sizes.
#[derive(Debug, Default)]
pub struct CompactionScratch {
    /// Per-slot: node must be re-evaluated this iteration (frontier dirty bitmap).
    dirty: Vec<bool>,
    /// Slots marked in `dirty`, unordered; sorted into `recheck` at the start of
    /// each frontier iteration.
    dirty_list: Vec<usize>,
    /// Per-slot `size_bytes` as of the node's last evaluation. Valid for every
    /// clean node — a node's size changes only when a transfer lands on it, which
    /// marks it dirty.
    cached_size: Vec<usize>,
    /// Alive slots, ascending — the compacted alive census. Maintained
    /// incrementally (invalidated slots are merged out each iteration), so the
    /// per-iteration loop never rescans the whole slot vector.
    alive_list: Vec<u32>,
    /// Running size histogram over the alive nodes, updated in O(re-checked +
    /// invalidated) per iteration; the per-iteration snapshot is a clone.
    running_hist: SizeHistogram,
    /// `false` only until iteration 0's full scan has populated `cached_size`
    /// and `running_hist` for every alive node.
    census_primed: bool,
    /// Slots to re-evaluate this iteration, ascending.
    recheck: Vec<usize>,
    /// Evaluation results, aligned with `recheck`.
    check_results: Vec<NodeCheck>,
    /// The assembled per-alive-node check list (only populated when tracing; the
    /// trace takes ownership of it each iteration).
    checks: Vec<NodeCheck>,
    /// Slots invalidated this iteration, ascending.
    invalidated: Vec<usize>,
    /// Per-thread P2 extraction buffers, merged into `transfers` in slot order.
    extract_buffers: Vec<Vec<(usize, TransferNode)>>,
    /// Extracted transfers in canonical (slot-major, path-order) order.
    transfers: Vec<(usize, TransferNode)>,
    /// Resolved destination slot per transfer (aligned with `transfers`).
    resolved: Vec<Option<usize>>,
    /// Whether each transfer's application found a matching extension.
    matched: Vec<bool>,
    /// Sorted destination slots (shard-boundary selection).
    dest_sorted: Vec<u32>,
    /// Slot-space cut points of the destination shards (ascending, first 0).
    shard_cuts: Vec<usize>,
    /// Transfers per shard (aligned with the `shard_cuts` windows).
    shard_counts: Vec<usize>,
    /// Running scatter positions of the counting sort (one per shard).
    shard_offsets: Vec<usize>,
    /// Transfer indices permuted into shard-major order, canonical within a shard.
    shard_index: Vec<u32>,
    /// Apply results aligned with `shard_index`, scattered back into `matched`.
    shard_matched: Vec<bool>,
    /// Per-slot touched bitmap (reset via `touched_order`, not a full clear).
    touched: Vec<bool>,
    /// Destinations in first-touch order (the deterministic update-trace order).
    touched_order: Vec<usize>,
}

impl CompactionScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        CompactionScratch::default()
    }

    /// Sizes the per-slot buffers for a graph with `slot_count` slots and clears
    /// any state left over from a previous run.
    fn reset_for(&mut self, slot_count: usize) {
        self.dirty.clear();
        self.dirty.resize(slot_count, false);
        self.cached_size.clear();
        self.cached_size.resize(slot_count, 0);
        self.touched.clear();
        self.touched.resize(slot_count, false);
        self.dirty_list.clear();
        self.touched_order.clear();
        self.checks.clear();
        self.alive_list.clear();
        self.running_hist = SizeHistogram::new();
        self.census_primed = false;
    }
}

/// Runs Iterative Compaction on `graph` in place.
///
/// All three pipeline stages are parallelised over `config.threads` scoped
/// worker threads (§4.5): P1 evaluates the (frontier-restricted) check set in
/// parallel, P2 extracts TransferNodes into per-thread buffers merged in slot
/// order, and P3 resolves destinations in parallel and applies the transfers
/// sharded by destination slot. Output is bit-identical across thread counts
/// and [`CompactionMode`]s.
pub fn compact(graph: &mut PakGraph, config: &PakmanConfig) -> CompactionOutcome {
    let mut scratch = CompactionScratch::new();
    compact_with_scratch(graph, config, &mut scratch)
}

/// [`compact`] with caller-provided scratch state, so repeated runs (batch
/// pipelines, benchmarks) reuse the grown buffers instead of reallocating them.
pub fn compact_with_scratch(
    graph: &mut PakGraph,
    config: &PakmanConfig,
    scratch: &mut CompactionScratch,
) -> CompactionOutcome {
    compact_with_scratch_controlled(graph, config, scratch, &RunControl::default())
        .expect("null control never cancels")
}

/// [`compact`] under a [`RunControl`]: the cancellation token is polled at the
/// top of every iteration (unwinding with [`PakmanError::Cancelled`]) and the
/// observer sees one `compaction_iteration` callback per iteration. With the
/// default (never-cancelled, unobserved) control this is bit-identical to
/// [`compact`].
///
/// # Errors
///
/// Returns [`PakmanError::Cancelled`] if the control's token fires between
/// iterations; the graph is left mid-compaction and should be dropped.
pub fn compact_controlled(
    graph: &mut PakGraph,
    config: &PakmanConfig,
    control: &RunControl<'_>,
) -> Result<CompactionOutcome, PakmanError> {
    let mut scratch = CompactionScratch::new();
    compact_with_scratch_controlled(graph, config, &mut scratch, control)
}

pub(crate) fn compact_with_scratch_controlled(
    graph: &mut PakGraph,
    config: &PakmanConfig,
    scratch: &mut CompactionScratch,
    control: &RunControl<'_>,
) -> Result<CompactionOutcome, PakmanError> {
    let initial_nodes = graph.alive_count();
    let mut trace = config.record_trace.then(|| {
        let mut sizes = vec![0usize; graph.slot_count()];
        for (slot, node) in graph.iter_alive() {
            sizes[slot] = node.size_bytes();
        }
        CompactionTrace::new(graph.slot_count(), sizes)
    });

    let mut stats = CompactionStats {
        initial_nodes,
        final_nodes: initial_nodes,
        ..CompactionStats::default()
    };
    let mut profile = CompactionProfile::default();
    scratch.reset_for(graph.slot_count());
    debug_assert!(graph.slot_count() <= u32::MAX as usize);
    scratch
        .alive_list
        .extend(graph.iter_alive().map(|(slot, _)| slot as u32));
    let frontier = config.compaction_mode == CompactionMode::Frontier;
    let mut alive = initial_nodes;

    for iteration in 0..config.max_compaction_iterations {
        control.check("compaction")?;
        let alive_before = alive;
        control.compaction_iteration(iteration, alive_before);
        if alive_before <= config.compaction_node_threshold {
            stats.converged = true;
            break;
        }

        // ---- Stage P1: invalidation check (parallel, read-only) ----
        let p1_start = Instant::now();
        scratch.recheck.clear();
        if !frontier || iteration == 0 {
            scratch
                .recheck
                .extend(scratch.alive_list.iter().map(|&slot| slot as usize));
        } else {
            // The frontier: destinations touched by the previous iteration's
            // transfers, in ascending slot order. Everything else is clean and
            // keeps its cached "not a target" verdict (see DESIGN.md).
            scratch.dirty_list.sort_unstable();
            for i in 0..scratch.dirty_list.len() {
                let slot = scratch.dirty_list[i];
                scratch.dirty[slot] = false;
                scratch.recheck.push(slot);
            }
            scratch.dirty_list.clear();
        }
        run_checks_into(
            graph,
            &scratch.recheck,
            config.threads,
            &mut scratch.check_results,
        );
        // Fold the re-check results into the running census: a slot's previous
        // size leaves the histogram, its current size enters, and the cache is
        // refreshed. Clean slots keep their recorded size — it cannot have
        // changed (only a landed transfer changes a size, and that marks the
        // slot dirty) — so the snapshot below equals a from-scratch histogram
        // over all alive nodes in O(re-checked) instead of O(alive).
        fold_census(
            &scratch.check_results,
            scratch.census_primed,
            &mut scratch.running_hist,
            &mut scratch.cached_size,
            &mut scratch.invalidated,
        );
        scratch.census_primed = true;
        let histogram = scratch.running_hist.clone();

        // The trace still lists one NodeCheck per alive node per iteration
        // (clean nodes report their cached verdict), so replays are identical
        // across scan modes; only traced runs pay this O(alive) assembly.
        if trace.is_some() {
            assemble_trace_checks(
                &scratch.alive_list,
                &scratch.recheck,
                &scratch.check_results,
                &scratch.cached_size,
                &mut scratch.checks,
            );
        }
        let p1 = p1_start.elapsed();
        profile.iterations.push(IterationProfile {
            iteration,
            p1,
            p2: Duration::ZERO,
            p3: Duration::ZERO,
            checked_nodes: scratch.recheck.len(),
            alive_nodes: alive_before,
        });

        if scratch.invalidated.is_empty() {
            stats.iterations.push(IterationStats {
                iteration,
                alive_before,
                invalidated: 0,
                transfers: 0,
                unmatched_transfers: 0,
                histogram,
            });
            if let Some(trace) = trace.as_mut() {
                trace.iterations.push(IterationTrace {
                    checks: std::mem::take(&mut scratch.checks),
                    transfers: Vec::new(),
                    updates: Vec::new(),
                });
            }
            stats.converged = true;
            break;
        }

        // ---- Stage P2: parallel TransferNode extraction, then invalidation ----
        let p2_start = Instant::now();
        extract_transfers(
            graph,
            &scratch.invalidated,
            config.threads,
            &mut scratch.extract_buffers,
            &mut scratch.transfers,
        );
        for &slot in &scratch.invalidated {
            graph.invalidate(slot);
            scratch.running_hist.unrecord(scratch.cached_size[slot]);
        }
        remove_sorted(&mut scratch.alive_list, &scratch.invalidated);
        alive -= scratch.invalidated.len();
        let p2 = p2_start.elapsed();

        // ---- Stage P3: parallel routing and sharded destination update ----
        // Destinations are resolved through the graph's sorted-rank index (binary
        // search over the packed (k-1)-mer layout) — no hashing per TransferNode.
        // Application is sharded by destination slot; the canonical transfer order
        // drives the recorded trace and the first-touch update order.
        let p3_start = Instant::now();
        resolve_destinations(
            graph,
            &scratch.transfers,
            config.threads,
            &mut scratch.resolved,
        );
        apply_transfers_sharded(graph, scratch, config.threads);

        let fold = fold_transfers(
            &scratch.transfers,
            &scratch.resolved,
            &scratch.matched,
            frontier,
            trace.is_some(),
            &mut scratch.touched,
            &mut scratch.touched_order,
            &mut scratch.dirty,
            &mut scratch.dirty_list,
        );
        let unmatched = fold.unmatched;
        let transfer_events = fold.events;

        let updates: Vec<UpdateEvent> = if trace.is_some() {
            scratch
                .touched_order
                .iter()
                .map(|&dest_slot| UpdateEvent {
                    dest_slot,
                    size_bytes: graph
                        .node(dest_slot)
                        .map(MacroNode::size_bytes)
                        .unwrap_or(0),
                })
                .collect()
        } else {
            Vec::new()
        };
        let p3 = p3_start.elapsed();
        if let Some(entry) = profile.iterations.last_mut() {
            entry.p2 = p2;
            entry.p3 = p3;
        }

        stats.total_transfers += scratch.transfers.len();
        stats.iterations.push(IterationStats {
            iteration,
            alive_before,
            invalidated: scratch.invalidated.len(),
            transfers: scratch.transfers.len(),
            unmatched_transfers: unmatched,
            histogram,
        });
        if let Some(trace) = trace.as_mut() {
            trace.iterations.push(IterationTrace {
                checks: std::mem::take(&mut scratch.checks),
                transfers: transfer_events,
                updates,
            });
        }
    }

    stats.final_nodes = graph.alive_count();
    if stats.final_nodes <= config.compaction_node_threshold {
        stats.converged = true;
    }
    Ok(CompactionOutcome {
        stats,
        trace,
        profile,
    })
}

/// Folds position-aligned P1 results into the incremental alive census: each
/// re-checked slot's previous size leaves the running histogram, its current
/// size enters, the size cache refreshes, and invalidated slots are collected
/// in ascending order. `census_primed` must be `false` exactly while no slot
/// has been recorded yet (iteration 0). Shared by both compaction engines —
/// the bit-identity of their histograms hangs on this fold being one function.
pub(crate) fn fold_census(
    check_results: &[NodeCheck],
    census_primed: bool,
    running_hist: &mut SizeHistogram,
    cached_size: &mut [usize],
    invalidated: &mut Vec<usize>,
) {
    invalidated.clear();
    for check in check_results {
        if census_primed {
            running_hist.unrecord(cached_size[check.slot]);
        }
        running_hist.record(check.size_bytes);
        cached_size[check.slot] = check.size_bytes;
        if check.invalidated {
            invalidated.push(check.slot);
        }
    }
}

/// Assembles the traced per-alive-node check list: re-checked slots report
/// their fresh result, clean slots their cached `(size, not-invalidated)`
/// verdict. `recheck` must be an ascending subset of `alive_list` and
/// `check_results` position-aligned with `recheck`. Shared by both engines so
/// traced replays are identical across scan modes *and* execution shapes.
pub(crate) fn assemble_trace_checks(
    alive_list: &[u32],
    recheck: &[usize],
    check_results: &[NodeCheck],
    cached_size: &[usize],
    checks: &mut Vec<NodeCheck>,
) {
    let mut ri = 0usize;
    for &slot32 in alive_list {
        let slot = slot32 as usize;
        let check = if recheck.get(ri) == Some(&slot) {
            let check = check_results[ri];
            ri += 1;
            check
        } else {
            NodeCheck {
                slot,
                size_bytes: cached_size[slot],
                invalidated: false,
            }
        };
        checks.push(check);
    }
    debug_assert_eq!(ri, recheck.len(), "every re-check slot is alive");
}

/// Result of [`fold_transfers`]: the unmatched census plus the trace events
/// (empty unless requested).
pub(crate) struct TransferFold {
    pub unmatched: usize,
    pub events: Vec<TransferEvent>,
}

/// The canonical post-P3 fold over the transfer stream: resets and rebuilds
/// the first-touch update order, counts unmatched transfers, emits the trace
/// transfer events, and marks the next iteration's dirty frontier. Both
/// engines run this identical fold over their canonical streams, which is what
/// keeps their traces and frontiers bit-identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fold_transfers(
    transfers: &[(usize, TransferNode)],
    resolved: &[Option<usize>],
    matched: &[bool],
    frontier: bool,
    want_events: bool,
    touched: &mut [bool],
    touched_order: &mut Vec<usize>,
    dirty: &mut [bool],
    dirty_list: &mut Vec<usize>,
) -> TransferFold {
    for &slot in touched_order.iter() {
        touched[slot] = false;
    }
    touched_order.clear();
    let mut unmatched = 0usize;
    let mut events: Vec<TransferEvent> =
        Vec::with_capacity(if want_events { transfers.len() } else { 0 });
    for (i, (source_slot, transfer)) in transfers.iter().enumerate() {
        match resolved[i] {
            Some(dest_slot) => {
                if want_events {
                    events.push(TransferEvent {
                        source_slot: *source_slot,
                        dest_slot,
                        size_bytes: transfer.size_bytes(),
                    });
                }
                if matched[i] {
                    if !touched[dest_slot] {
                        touched[dest_slot] = true;
                        touched_order.push(dest_slot);
                    }
                } else {
                    unmatched += 1;
                }
                if frontier && !dirty[dest_slot] {
                    dirty[dest_slot] = true;
                    dirty_list.push(dest_slot);
                }
            }
            None => unmatched += 1,
        }
    }
    TransferFold { unmatched, events }
}

/// Removes the sorted slot set `removed` from the sorted `alive` list in place
/// (one forward pass; both inputs ascending).
pub(crate) fn remove_sorted(alive: &mut Vec<u32>, removed: &[usize]) {
    if removed.is_empty() {
        return;
    }
    debug_assert!(removed.windows(2).all(|w| w[0] < w[1]));
    let mut write = 0usize;
    let mut ri = 0usize;
    for read in 0..alive.len() {
        let slot = alive[read];
        if ri < removed.len() && removed[ri] == slot as usize {
            ri += 1;
            continue;
        }
        alive[write] = slot;
        write += 1;
    }
    debug_assert_eq!(ri, removed.len(), "every removed slot was alive");
    alive.truncate(write);
}

/// Evaluates the invalidation predicate for `slots` (ascending), writing one
/// result per slot into `results` in the same order. Parallel over contiguous
/// chunks; the output is position-aligned with the input, so the thread count
/// cannot change it.
fn run_checks_into(
    graph: &PakGraph,
    slots: &[usize],
    threads: usize,
    results: &mut Vec<NodeCheck>,
) {
    results.clear();
    results.resize(
        slots.len(),
        NodeCheck {
            slot: 0,
            size_bytes: 0,
            invalidated: false,
        },
    );
    let threads = threads.max(1).min(slots.len().max(1));
    if threads <= 1 || slots.len() < 64 {
        for (out, &slot) in results.iter_mut().zip(slots) {
            *out = check_one(graph, slot);
        }
        return;
    }
    let chunk = slots.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (out_chunk, slot_chunk) in results.chunks_mut(chunk).zip(slots.chunks(chunk)) {
            scope.spawn(move || {
                for (out, &slot) in out_chunk.iter_mut().zip(slot_chunk) {
                    *out = check_one(graph, slot);
                }
            });
        }
    });
}

fn check_one(graph: &PakGraph, slot: usize) -> NodeCheck {
    let node = graph.node(slot).expect("slot is alive");
    NodeCheck {
        slot,
        size_bytes: node.size_bytes(),
        invalidated: is_invalidation_target(graph, node),
    }
}

/// Extracts the TransferNodes of every invalidated slot (ascending) into `out`
/// in canonical slot-major order. Parallel over contiguous chunks into the
/// pre-allocated per-thread `buffers`, merged in chunk (= slot) order.
fn extract_transfers(
    graph: &PakGraph,
    invalidated: &[usize],
    threads: usize,
    buffers: &mut Vec<Vec<(usize, TransferNode)>>,
    out: &mut Vec<(usize, TransferNode)>,
) {
    out.clear();
    let threads = threads.max(1).min(invalidated.len().max(1));
    if threads <= 1 || invalidated.len() < 32 {
        for &slot in invalidated {
            extract_one(graph, slot, out);
        }
        return;
    }
    let chunk = invalidated.len().div_ceil(threads);
    let used = invalidated.len().div_ceil(chunk);
    if buffers.len() < used {
        buffers.resize_with(used, Vec::new);
    }
    std::thread::scope(|scope| {
        for (buffer, slot_chunk) in buffers.iter_mut().zip(invalidated.chunks(chunk)) {
            scope.spawn(move || {
                buffer.clear();
                for &slot in slot_chunk {
                    extract_one(graph, slot, buffer);
                }
            });
        }
    });
    for buffer in buffers.iter_mut().take(used) {
        out.append(buffer);
    }
}

fn extract_one(graph: &PakGraph, slot: usize, out: &mut Vec<(usize, TransferNode)>) {
    let node = graph.node(slot).expect("invalidated slot was alive");
    for path in node.paths() {
        if let Some((pred, succ)) = TransferNode::extract_pair(node, path) {
            out.push((slot, pred));
            out.push((slot, succ));
        }
    }
}

/// Resolves every transfer's destination slot through the sorted-rank index,
/// in parallel, position-aligned with `transfers`.
fn resolve_destinations(
    graph: &PakGraph,
    transfers: &[(usize, TransferNode)],
    threads: usize,
    resolved: &mut Vec<Option<usize>>,
) {
    resolved.clear();
    resolved.resize(transfers.len(), None);
    let threads = threads.max(1).min(transfers.len().max(1));
    if threads <= 1 || transfers.len() < 64 {
        for (out, (_, transfer)) in resolved.iter_mut().zip(transfers) {
            *out = graph.index_of(&transfer.destination);
        }
        return;
    }
    let chunk = transfers.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (out_chunk, transfer_chunk) in resolved.chunks_mut(chunk).zip(transfers.chunks(chunk)) {
            scope.spawn(move || {
                for (out, (_, transfer)) in out_chunk.iter_mut().zip(transfer_chunk) {
                    *out = graph.index_of(&transfer.destination);
                }
            });
        }
    });
}

/// Applies every resolved transfer to its destination node, filling
/// `scratch.matched` (aligned with `scratch.transfers`).
///
/// Parallelism shards the transfers by **destination slot** into disjoint
/// contiguous slot ranges: each scoped thread owns one range of the slot vector
/// (`split_at_mut`) and applies its shard's transfers in canonical order.
/// Because a transfer only mutates its own destination and per-destination order
/// is preserved, the matched flags — and the destination nodes — are
/// bit-identical to a serial application.
fn apply_transfers_sharded(graph: &mut PakGraph, scratch: &mut CompactionScratch, threads: usize) {
    let CompactionScratch {
        transfers,
        resolved,
        matched,
        dest_sorted,
        shard_cuts,
        shard_counts,
        shard_offsets,
        shard_index,
        shard_matched,
        ..
    } = scratch;
    let transfers: &[(usize, TransferNode)] = transfers;
    let resolved: &[Option<usize>] = resolved;

    matched.clear();
    matched.resize(transfers.len(), false);
    let threads = threads.max(1);
    if threads <= 1 || transfers.len() < 64 {
        for (i, (_, transfer)) in transfers.iter().enumerate() {
            if let Some(dest_slot) = resolved[i] {
                let dest = graph.node_mut(dest_slot).expect("destination is alive");
                matched[i] = apply_transfer(dest, transfer);
            }
        }
        return;
    }

    // Shard boundaries: quantiles of the sorted destination slots, so shards
    // carry roughly equal transfer counts while staying contiguous in slot space.
    dest_sorted.clear();
    dest_sorted.extend(resolved.iter().flatten().map(|&d| d as u32));
    if dest_sorted.is_empty() {
        return;
    }
    dest_sorted.sort_unstable();
    shard_cuts.clear();
    shard_cuts.push(0);
    for s in 1..threads {
        let cut = dest_sorted[s * dest_sorted.len() / threads] as usize;
        if cut > *shard_cuts.last().expect("shard_cuts is non-empty") {
            shard_cuts.push(cut);
        }
    }
    shard_cuts.push(graph.slot_count());
    let shards = shard_cuts.len() - 1;
    let shard_of = |dest: usize| shard_cuts.partition_point(|&cut| cut <= dest) - 1;

    // Counting sort of transfer indices into shard-major order; the scatter is
    // stable, so canonical order is preserved within each shard.
    shard_counts.clear();
    shard_counts.resize(shards, 0);
    for dest in resolved.iter().flatten() {
        shard_counts[shard_of(*dest)] += 1;
    }
    let total: usize = shard_counts.iter().sum();
    shard_index.clear();
    shard_index.resize(total, 0);
    shard_offsets.clear();
    let mut running = 0usize;
    for &count in shard_counts.iter() {
        shard_offsets.push(running);
        running += count;
    }
    for (i, dest) in resolved.iter().enumerate() {
        if let Some(dest) = dest {
            let shard = shard_of(*dest);
            shard_index[shard_offsets[shard]] = i as u32;
            shard_offsets[shard] += 1;
        }
    }

    shard_matched.clear();
    shard_matched.resize(total, false);
    std::thread::scope(|scope| {
        let mut rest_slots = graph.slots_mut();
        let mut rest_index: &[u32] = shard_index;
        let mut rest_matched: &mut [bool] = shard_matched;
        for shard in 0..shards {
            // Shards tile the slot space: `rest_slots` always starts at slot `lo`.
            let lo = shard_cuts[shard];
            let hi = shard_cuts[shard + 1];
            let (shard_slots, remaining_slots) = rest_slots.split_at_mut(hi - lo);
            rest_slots = remaining_slots;
            let (index, remaining_index) = rest_index.split_at(shard_counts[shard]);
            rest_index = remaining_index;
            let (matched_out, remaining_matched) = rest_matched.split_at_mut(shard_counts[shard]);
            rest_matched = remaining_matched;
            if index.is_empty() {
                continue;
            }
            scope.spawn(move || {
                for (out, &transfer_idx) in matched_out.iter_mut().zip(index) {
                    let transfer_idx = transfer_idx as usize;
                    let dest = resolved[transfer_idx].expect("sharded transfers are resolved");
                    let node = shard_slots[dest - lo]
                        .as_mut()
                        .expect("destination is alive");
                    *out = apply_transfer(node, &transfers[transfer_idx].1);
                }
            });
        }
    });
    for (pos, &transfer_idx) in shard_index.iter().enumerate() {
        matched[transfer_idx as usize] = shard_matched[pos];
    }
}

/// Stage P1 decision: the node is invalidated if it is fully interior and its
/// (k-1)-mer is strictly the lexicographically largest among its neighbours
/// (Fig. 4 (b)). The strictness guarantees two adjacent nodes are never invalidated in
/// the same iteration. A neighbour that no longer exists in the graph (it was pruned,
/// or its wiring went stale after an earlier invalidation) does not block the check;
/// the corresponding TransferNode is simply dropped and counted as unmatched.
///
/// Neighbour (k-1)-mers are computed per path directly on the packed
/// representations ([`MacroNode::predecessor_k1mer`] /
/// [`MacroNode::successor_k1mer`]) — no extension aggregation, no intermediate
/// vectors, no heap allocation. Visiting the path multiset instead of the
/// deduplicated neighbour set cannot change the verdict: every condition is
/// universally quantified over the neighbours.
pub fn is_invalidation_target(graph: &PakGraph, node: &MacroNode) -> bool {
    is_invalidation_target_with(|k1mer| graph.contains(k1mer), node)
}

/// [`is_invalidation_target`] generalized over the aliveness oracle, so the
/// sharded engine can route neighbour lookups through the owner shards while
/// evaluating the very same predicate.
pub(crate) fn is_invalidation_target_with<F: Fn(&nmp_pak_genome::Kmer) -> bool>(
    contains: F,
    node: &MacroNode,
) -> bool {
    if !node.is_fully_interior() {
        return false;
    }
    let own = node.k1mer();
    let mut neighbour_count = 0usize;
    for path in node.paths() {
        let (Some(prefix), Some(suffix)) = (&path.prefix, &path.suffix) else {
            // Unreachable after the is_fully_interior gate, but a terminal path
            // must never count as a dominated neighbour.
            return false;
        };
        for neighbour in [node.predecessor_k1mer(prefix), node.successor_k1mer(suffix)] {
            // Every neighbour must still be alive: invalidating a node whose wiring
            // has gone stale (a residual path pointing at an already-removed
            // neighbour) would drop its TransferNodes and lose assembled sequence,
            // so such nodes are kept. This is conservative — compaction stops
            // earlier than PaKman's — but it keeps the walk lossless; see DESIGN.md.
            if !contains(&neighbour) {
                return false;
            }
            neighbour_count += 1;
            if neighbour >= own {
                return false;
            }
        }
    }
    neighbour_count > 0
}

/// Applies one TransferNode to its destination node, splitting paths as necessary so
/// that exactly `transfer.count` units of flow receive the new extension. Returns
/// `false` if no matching extension was found. Shared with the sharded engine,
/// whose per-shard P3 applies mailbox deliveries with this exact function.
pub(crate) fn apply_transfer(dest: &mut MacroNode, transfer: &TransferNode) -> bool {
    let mut remaining = transfer.count;
    let mut new_paths = Vec::new();
    let paths = dest.paths_mut();

    for path in paths.iter_mut() {
        if remaining == 0 {
            break;
        }
        let matches = match transfer.side {
            TransferSide::Predecessor => path.suffix.as_ref() == Some(&transfer.match_ext),
            TransferSide::Successor => path.prefix.as_ref() == Some(&transfer.match_ext),
        };
        if !matches {
            continue;
        }
        let take = path.count.min(remaining);
        if take == path.count {
            // Whole path is redirected.
            match transfer.side {
                TransferSide::Predecessor => path.suffix = Some(transfer.new_ext.clone()),
                TransferSide::Successor => path.prefix = Some(transfer.new_ext.clone()),
            }
        } else {
            // Split: `take` units get the new extension, the rest keeps the old one.
            path.count -= take;
            let mut split = path.clone();
            split.count = take;
            match transfer.side {
                TransferSide::Predecessor => split.suffix = Some(transfer.new_ext.clone()),
                TransferSide::Successor => split.prefix = Some(transfer.new_ext.clone()),
            }
            new_paths.push(split);
        }
        remaining -= take;
    }

    paths.extend(new_paths);
    remaining < transfer.count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmer_count::{count_kmers, KmerCounterConfig};
    use nmp_pak_genome::{DnaString, Kmer, SequencingRead};

    fn graph_from_reads(reads: &[&str], k: usize) -> PakGraph {
        let reads: Vec<SequencingRead> = reads
            .iter()
            .enumerate()
            .map(|(i, s)| SequencingRead::new(format!("r{i}"), s.parse::<DnaString>().unwrap()))
            .collect();
        let (counted, _) = count_kmers(
            &reads,
            KmerCounterConfig {
                k,
                min_count: 1,
                threads: 1,
            },
        )
        .unwrap();
        PakGraph::from_counted_kmers(&counted, k, 1)
    }

    fn compact_config(threshold: usize) -> PakmanConfig {
        PakmanConfig {
            compaction_node_threshold: threshold,
            threads: 1,
            record_trace: true,
            ..PakmanConfig::default()
        }
    }

    #[test]
    fn histogram_buckets_and_fractions() {
        let mut h = SizeHistogram::new();
        for size in [100, 300, 600, 1500, 9000, 40_000] {
            h.record(size);
        }
        assert_eq!(h.total(), 6);
        // Sizes > 1 KB: 1500, 9000, 40000 → 3/6. (600 sits in the 512–1024 bucket.)
        assert!((h.fraction_exceeding(1024) - 0.5).abs() < 1e-12);
        // Sizes > 8 KB: 9000 and 40000 → 2/6.
        assert!((h.fraction_exceeding(8192) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.counts().len(), SizeHistogram::BUCKET_BOUNDS.len() + 1);
    }

    #[test]
    fn compaction_reduces_node_count_on_a_chain() {
        let mut graph = graph_from_reads(&["ACGTACCTGATCAGTTGCAAC"], 5);
        let before = graph.alive_count();
        let outcome = compact(&mut graph, &compact_config(2));
        let after = graph.alive_count();
        assert!(after < before, "compaction should remove interior nodes");
        assert_eq!(outcome.stats.initial_nodes, before);
        assert_eq!(outcome.stats.final_nodes, after);
        assert!(outcome.stats.converged);
        assert!(outcome.stats.iteration_count() >= 1);
    }

    #[test]
    fn compaction_preserves_spelled_sequence_on_a_chain() {
        // After full compaction of a linear chain, walking from the terminal-start node
        // must reproduce the original read.
        let read = "ACGTACCTGATCAGTTGCAAC";
        let mut graph = graph_from_reads(&[read], 5);
        compact(&mut graph, &compact_config(0));
        let contigs = crate::walk::generate_contigs(&graph, 0);
        assert!(
            contigs.iter().any(|c| c.sequence.to_string() == read),
            "expected contig {read}, got {:?}",
            contigs
                .iter()
                .map(|c| c.sequence.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn adjacent_nodes_are_never_both_invalidated() {
        let mut graph = graph_from_reads(&["ACGTACCTGATCAGTTGCAACGGTT"], 6);
        let cfg = compact_config(0);
        let outcome = compact(&mut graph, &cfg);
        let trace = outcome.trace.expect("trace recorded");
        for it in &trace.iterations {
            let invalidated: std::collections::HashSet<usize> = it
                .checks
                .iter()
                .filter(|c| c.invalidated)
                .map(|c| c.slot)
                .collect();
            // No transfer may target an invalidated slot: destinations are neighbours,
            // and neighbours of an invalidated node must stay alive this iteration.
            for t in &it.transfers {
                assert!(!invalidated.contains(&t.dest_slot));
            }
        }
    }

    #[test]
    fn terminal_nodes_are_not_invalidated() {
        let graph = graph_from_reads(&["ACGTACCTG"], 5);
        for (_, node) in graph.iter_alive() {
            if !node.is_fully_interior() {
                assert!(!is_invalidation_target(&graph, node));
            }
        }
    }

    #[test]
    fn lexicographically_largest_interior_node_is_selected() {
        // Read "ACGTTAC", k = 5 gives (k-1)-mer chain ACGT → CGTT → GTTA → TTAC.
        // Interior nodes are CGTT and GTTA. Under the paper's A<C<T<G ordering,
        // GTTA is larger than both of its neighbours (CGTT and TTAC), so it is the
        // invalidation target; CGTT is not (its successor GTTA is larger).
        let graph = graph_from_reads(&["ACGTTAC"], 5);
        let gtta = graph
            .node_by_k1mer(&Kmer::from_ascii("GTTA").unwrap())
            .unwrap();
        let cgtt = graph
            .node_by_k1mer(&Kmer::from_ascii("CGTT").unwrap())
            .unwrap();
        assert!(is_invalidation_target(&graph, gtta));
        assert!(!is_invalidation_target(&graph, cgtt));

        // Compacting removes GTTA and routes its content to CGTT and TTAC
        // (two transfers for its single through-path), after which no further
        // interior node dominates its neighbours.
        let mut graph = graph;
        let outcome = compact(&mut graph, &compact_config(0));
        assert_eq!(outcome.stats.total_transfers, 2);
        assert!(outcome.stats.converged);
        assert_eq!(graph.alive_count(), 3);
        assert!(!graph.contains(&Kmer::from_ascii("GTTA").unwrap()));
        // CGTT's suffix grew from "A" to "AC".
        let cgtt = graph
            .node_by_k1mer(&Kmer::from_ascii("CGTT").unwrap())
            .unwrap();
        assert_eq!(cgtt.suffix_extensions()[0].0.to_string(), "AC");
    }

    #[test]
    fn trace_records_checks_transfers_and_updates() {
        let mut graph = graph_from_reads(&["ACGTACCTGATCAGTTGCAAC"], 5);
        let outcome = compact(&mut graph, &compact_config(2));
        let trace = outcome.trace.expect("trace requested");
        assert_eq!(trace.slot_count, trace.initial_sizes.len());
        assert!(trace.iteration_count() >= 1);
        let total_invalidated = trace.total_invalidated();
        assert!(total_invalidated > 0);
        // Every invalidated interior node produces two transfers per path.
        assert!(trace.total_transfers() >= total_invalidated);
        // Updates reference alive-at-the-time destinations with nonzero sizes.
        for it in &trace.iterations {
            for u in &it.updates {
                assert!(u.size_bytes > 0);
                assert!(u.dest_slot < trace.slot_count);
            }
        }
    }

    #[test]
    fn iteration_cap_is_respected() {
        let mut graph = graph_from_reads(&["ACGTACCTGATCAGTTGCAACGGTTACCAGT"], 5);
        let cfg = PakmanConfig {
            compaction_node_threshold: 0,
            max_compaction_iterations: 1,
            threads: 1,
            ..PakmanConfig::default()
        };
        let outcome = compact(&mut graph, &cfg);
        assert!(outcome.stats.iteration_count() <= 1);
    }

    #[test]
    fn parallel_and_serial_checks_agree() {
        let graph = graph_from_reads(&["ACGTACCTGATCAGTTGCAACGGTTACCAGTACGATC"], 6);
        let slots: Vec<usize> = graph.iter_alive().map(|(slot, _)| slot).collect();
        let mut serial = Vec::new();
        run_checks_into(&graph, &slots, 1, &mut serial);
        let mut parallel = Vec::new();
        run_checks_into(&graph, &slots, 4, &mut parallel);
        // Results are position-aligned with the slot list in both cases.
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), slots.len());
    }

    fn outcomes_identical(a: &CompactionOutcome, b: &CompactionOutcome, what: &str) {
        assert_eq!(a.stats, b.stats, "stats diverged: {what}");
        assert_eq!(a.trace, b.trace, "trace diverged: {what}");
    }

    #[test]
    fn frontier_matches_full_scan_bit_for_bit() {
        let reads = [
            "ACGTACCTGATCAGTTGCAACGGTTACCAGTACGATC",
            "GGGCCCAAATTTACGTAG",
        ];
        for threads in [1, 2, 4, 8] {
            let mut full_graph = graph_from_reads(&reads, 6);
            let mut frontier_graph = full_graph.clone();
            let full_cfg = PakmanConfig {
                compaction_mode: CompactionMode::FullScan,
                threads,
                ..compact_config(0)
            };
            let frontier_cfg = PakmanConfig {
                compaction_mode: CompactionMode::Frontier,
                ..full_cfg
            };
            let full = compact(&mut full_graph, &full_cfg);
            let frontier = compact(&mut frontier_graph, &frontier_cfg);
            outcomes_identical(&full, &frontier, &format!("threads = {threads}"));
            // The compacted graphs agree node for node.
            assert_eq!(full_graph.slot_count(), frontier_graph.slot_count());
            for slot in 0..full_graph.slot_count() {
                assert_eq!(full_graph.node(slot), frontier_graph.node(slot));
            }
            // The frontier never evaluates more predicates than the full scan,
            // and both record the same per-iteration alive census.
            for (full_it, frontier_it) in full
                .profile
                .iterations
                .iter()
                .zip(&frontier.profile.iterations)
            {
                assert_eq!(full_it.alive_nodes, frontier_it.alive_nodes);
                assert_eq!(full_it.checked_nodes, full_it.alive_nodes);
                assert!(frontier_it.checked_nodes <= frontier_it.alive_nodes);
            }
        }
    }

    #[test]
    fn scratch_reuse_across_runs_is_bit_identical() {
        let cfg = compact_config(0);
        let mut scratch = CompactionScratch::new();
        // First run grows the buffers; the second (different graph shape) must be
        // oblivious to the leftovers.
        let mut warmup = graph_from_reads(&["ACGTACCTGATCAGTTGCAACGGTT"], 5);
        let _ = compact_with_scratch(&mut warmup, &cfg, &mut scratch);

        let mut fresh_graph = graph_from_reads(&["ACGTACCTGATCAGTTGCAAC"], 5);
        let mut reused_graph = fresh_graph.clone();
        let fresh = compact(&mut fresh_graph, &cfg);
        let reused = compact_with_scratch(&mut reused_graph, &cfg, &mut scratch);
        outcomes_identical(&fresh, &reused, "scratch reuse");
    }

    #[test]
    fn profile_records_every_iteration() {
        let mut graph = graph_from_reads(&["ACGTACCTGATCAGTTGCAAC"], 5);
        let outcome = compact(&mut graph, &compact_config(0));
        assert_eq!(
            outcome.profile.iterations.len(),
            outcome.stats.iteration_count()
        );
        // Iteration 0 is always a full scan.
        let first = &outcome.profile.iterations[0];
        assert_eq!(first.checked_nodes, first.alive_nodes);
        assert_eq!(first.alive_nodes, outcome.stats.initial_nodes);
        assert!(outcome.profile.total_checked() <= outcome.profile.total_full_scan_checks());
    }

    #[test]
    fn reduction_factor_reported() {
        let mut graph = graph_from_reads(&["ACGTACCTGATCAGTTGCAAC"], 5);
        let outcome = compact(&mut graph, &compact_config(2));
        assert!(outcome.stats.reduction_factor() > 1.0);
    }
}
