//! Graph walk and contig generation (assembly step E, Fig. 2).
//!
//! After Iterative Compaction the PaK-graph is small and its extensions are long, so
//! a simple traversal suffices (the paper measures this step at ~1 % of runtime,
//! Fig. 5). The walk starts at nodes carrying terminal-start flow (reads began there),
//! repeatedly follows the wired through-path with the highest remaining count, and
//! spells out the visited (k-1)-mer plus every suffix extension along the way.
//!
//! The walk core is streaming: [`write_contigs_fasta`] emits each contig straight
//! to a `Write` sink as the traversal produces it, and [`generate_contigs`]
//! collects the same stream into a length-sorted `Vec`. Each contig's backing
//! [`DnaString`] is allocated once, pre-sized from the span of the chosen path,
//! and filled by appending packed codes — no per-node re-encoding.

use crate::contig::Contig;
use crate::error::PakmanError;
use crate::graph::PakGraph;
use nmp_pak_genome::{fasta, DnaString, Kmer};
use std::collections::HashSet;
use std::io::Write;
use std::ops::ControlFlow;

/// Generates contigs from a (typically compacted) PaK-graph.
///
/// Contigs shorter than `min_length` bases are discarded. The result is sorted by
/// decreasing length.
pub fn generate_contigs(graph: &PakGraph, min_length: usize) -> Vec<Contig> {
    let mut contigs = Vec::new();
    walk_contigs(graph, min_length, &mut |contig| {
        contigs.push(contig);
        ControlFlow::Continue(())
    });
    contigs.sort_by_key(|c| std::cmp::Reverse(c.len()));
    contigs
}

/// [`generate_contigs`] with the per-source-node traversal parallelised over
/// `threads` scoped workers, **bit-identical** to the serial walk at every
/// thread count.
///
/// The scheme is speculative, the same shape as compaction's P1 shards: each
/// pass's start candidates are walked *in parallel against the frozen
/// `used`-path state at pass entry*, recording the trail of (slot, path) pairs
/// each walk consumed; a serial commit loop then replays the candidates in the
/// canonical order, and a speculative walk is accepted verbatim iff its whole
/// trail is still unused at commit time. Acceptance is exact, not heuristic:
/// `used` flags only ever get set, so the commit-time candidate set at every
/// step of an accepted walk is a subset of the snapshot set that still contains
/// the chosen path — and since `Iterator::max_by_key` returns the *last*
/// maximum, a winner keeps winning in any subset that retains it (everything
/// after it has a strictly smaller count). Touched walks are simply re-walked
/// serially, so contested regions degrade to the serial algorithm.
pub fn generate_contigs_threaded(
    graph: &PakGraph,
    min_length: usize,
    threads: usize,
) -> Vec<Contig> {
    let mut contigs = Vec::new();
    walk_contigs_threaded(graph, min_length, threads, &mut |contig| {
        contigs.push(contig);
        ControlFlow::Continue(())
    });
    contigs.sort_by_key(|c| std::cmp::Reverse(c.len()));
    contigs
}

/// Streams the graph's contigs to `writer` as FASTA records (80-column lines),
/// in walk order, skipping contigs shorter than `min_length` bases. Returns the
/// number of records written.
///
/// Unlike [`generate_contigs`] + [`nmp_pak_genome::fasta::write_fasta`], this
/// never holds more than one contig in memory, so writing the assembly of a
/// budget-capped run (see [`crate::config::SpillConfig`]) does not reintroduce
/// an O(assembly) resident buffer. Records are named `contig_{i} length={len}`.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_contigs_fasta<W: Write>(
    graph: &PakGraph,
    min_length: usize,
    writer: &mut W,
) -> Result<usize, PakmanError> {
    let mut written = 0usize;
    let mut io_error: Option<PakmanError> = None;
    walk_contigs(graph, min_length, &mut |contig| {
        let name = format!("contig_{written} length={}", contig.len());
        match fasta::write_fasta_record(writer, &name, &contig.sequence, 80) {
            Ok(()) => {
                written += 1;
                ControlFlow::Continue(())
            }
            Err(err) => {
                io_error = Some(err.into());
                ControlFlow::Break(())
            }
        }
    });
    match io_error {
        Some(err) => Err(err),
        None => Ok(written),
    }
}

/// The streaming walk core: traverses the graph's three start-point passes and
/// hands each contig of at least `min_length` bases to `emit`, stopping early if
/// `emit` breaks.
fn walk_contigs(
    graph: &PakGraph,
    min_length: usize,
    emit: &mut dyn FnMut(Contig) -> ControlFlow<()>,
) {
    let mut used: Vec<Vec<bool>> = vec![Vec::new(); graph.slot_count()];
    for (slot, node) in graph.iter_alive() {
        used[slot] = vec![false; node.paths().len()];
    }

    let deliver = |contig: Contig, emit: &mut dyn FnMut(Contig) -> ControlFlow<()>| {
        if contig.len() >= min_length {
            emit(contig)
        } else {
            ControlFlow::Continue(())
        }
    };

    // Pass 1: start from true source nodes (no incoming interior flow at all). Reads
    // that merely *start* at an otherwise covered node contribute redundant terminal
    // flow and are not separate contig starts.
    for (slot, node) in graph.iter_alive() {
        if node.incoming_count() > 0 {
            continue;
        }
        for path_idx in 0..node.paths().len() {
            let path = &node.paths()[path_idx];
            if path.suffix.is_some() && !used[slot][path_idx] {
                let contig = walk_from(graph, &mut used, slot, path_idx);
                if deliver(contig, emit).is_break() {
                    return;
                }
            }
        }
    }

    // Pass 2: cover leftovers (cycles or wiring breaks) by starting at any unused
    // interior path whose successor still exists. Residual paths that point at nodes
    // removed by compaction are stale wiring noise, not assembly content.
    for (slot, node) in graph.iter_alive() {
        for path_idx in 0..node.paths().len() {
            let path = &node.paths()[path_idx];
            if path.prefix.is_some() && !used[slot][path_idx] {
                if let Some(suffix) = path.suffix.as_ref() {
                    if graph.contains(&node.successor_k1mer(suffix)) {
                        let contig = walk_from(graph, &mut used, slot, path_idx);
                        if deliver(contig, emit).is_break() {
                            return;
                        }
                    }
                }
            }
        }
    }

    // Pass 3: isolated nodes with only terminal flow still carry their (k-1)-mer.
    for (slot, node) in graph.iter_alive() {
        if node.paths().iter().all(|p| p.suffix.is_none()) && used[slot].iter().all(|u| !u) {
            for flag in &mut used[slot] {
                *flag = true;
            }
            let contig = Contig::new(node.k1mer().to_dna_string());
            if deliver(contig, emit).is_break() {
                return;
            }
        }
    }
}

/// The parallel walk core: each pass speculates in parallel against the frozen
/// pass-entry `used` state, then commits serially in the canonical candidate
/// order (see [`generate_contigs_threaded`] for why this is exact).
fn walk_contigs_threaded(
    graph: &PakGraph,
    min_length: usize,
    threads: usize,
    emit: &mut dyn FnMut(Contig) -> ControlFlow<()>,
) {
    if threads <= 1 {
        return walk_contigs(graph, min_length, emit);
    }
    let mut used: Vec<Vec<bool>> = vec![Vec::new(); graph.slot_count()];
    for (slot, node) in graph.iter_alive() {
        used[slot] = vec![false; node.paths().len()];
    }

    // Pass 1 candidates: true source nodes, every wired path. The serial pass
    // checks `!used` at walk time; the commit loop reproduces that check.
    let mut starts: Vec<(u32, u32)> = Vec::new();
    for (slot, node) in graph.iter_alive() {
        if node.incoming_count() > 0 {
            continue;
        }
        for (path_idx, path) in node.paths().iter().enumerate() {
            if path.suffix.is_some() {
                starts.push((slot as u32, path_idx as u32));
            }
        }
    }
    if commit_pass(graph, &mut used, &starts, threads, min_length, emit).is_break() {
        return;
    }

    // Pass 2 candidates: leftover interior paths with a live successor. The
    // `!used` filter against the pass-entry state is sound — `used` only grows,
    // so anything used now is still used when the serial pass would reach it.
    starts.clear();
    for (slot, node) in graph.iter_alive() {
        for (path_idx, path) in node.paths().iter().enumerate() {
            if path.prefix.is_some() && !used[slot][path_idx] {
                if let Some(suffix) = path.suffix.as_ref() {
                    if graph.contains(&node.successor_k1mer(suffix)) {
                        starts.push((slot as u32, path_idx as u32));
                    }
                }
            }
        }
    }
    if commit_pass(graph, &mut used, &starts, threads, min_length, emit).is_break() {
        return;
    }

    // Pass 3: isolated nodes — trivial, identical to the serial pass.
    for (slot, node) in graph.iter_alive() {
        if node.paths().iter().all(|p| p.suffix.is_none()) && used[slot].iter().all(|u| !u) {
            for flag in &mut used[slot] {
                *flag = true;
            }
            let contig = Contig::new(node.k1mer().to_dna_string());
            if contig.len() >= min_length && emit(contig).is_break() {
                return;
            }
        }
    }
}

/// A speculative walk's result: the `(slot, path)` trail it consumed plus the
/// contig it spelled. `None` when the start was already used at snapshot time.
type Speculation = Option<(Vec<(u32, u32)>, Contig)>;

/// Runs one speculate-then-commit pass over `starts` (canonical order).
/// Returns `Break` if `emit` broke.
fn commit_pass(
    graph: &PakGraph,
    used: &mut [Vec<bool>],
    starts: &[(u32, u32)],
    threads: usize,
    min_length: usize,
    emit: &mut dyn FnMut(Contig) -> ControlFlow<()>,
) -> ControlFlow<()> {
    if starts.is_empty() {
        return ControlFlow::Continue(());
    }

    // Phase 1: speculative walks, read-only over the frozen `used` snapshot.
    let mut speculated: Vec<Speculation> = Vec::new();
    speculated.resize_with(starts.len(), || None);
    let workers = threads.max(1).min(starts.len());
    let chunk = starts.len().div_ceil(workers);
    {
        let snapshot: &[Vec<bool>] = used;
        std::thread::scope(|scope| {
            for (out_chunk, start_chunk) in speculated.chunks_mut(chunk).zip(starts.chunks(chunk)) {
                scope.spawn(move || {
                    let mut visited: HashSet<(u32, u32)> = HashSet::new();
                    for (out, &(slot, path_idx)) in out_chunk.iter_mut().zip(start_chunk) {
                        // Already used at pass entry → used at commit too
                        // (flags only get set); the commit loop will skip it.
                        if snapshot[slot as usize][path_idx as usize] {
                            continue;
                        }
                        visited.clear();
                        let mut trail: Vec<(u32, u32)> = Vec::new();
                        let contig = walk_trail(
                            graph,
                            snapshot,
                            &mut visited,
                            &mut trail,
                            slot as usize,
                            path_idx as usize,
                        );
                        *out = Some((trail, contig));
                    }
                });
            }
        });
    }

    // Phase 2: serial commit in canonical order.
    for (spec, &(slot, path_idx)) in speculated.iter_mut().zip(starts) {
        let (slot, path_idx) = (slot as usize, path_idx as usize);
        if used[slot][path_idx] {
            continue;
        }
        let contig = match spec.take() {
            Some((trail, contig)) if trail.iter().all(|&(s, p)| !used[s as usize][p as usize]) => {
                // Nothing this walk consumed was taken by an earlier commit:
                // the speculative walk is exactly what the serial walk would
                // do now. Accept it verbatim.
                for &(s, p) in &trail {
                    used[s as usize][p as usize] = true;
                }
                contig
            }
            // Contested (or skipped at snapshot time): fall back to the
            // serial walk against the live state.
            _ => walk_from(graph, used, slot, path_idx),
        };
        if contig.len() >= min_length && emit(contig).is_break() {
            return ControlFlow::Break(());
        }
    }
    ControlFlow::Continue(())
}

/// Walks forward from `(slot, path_idx)`, collecting the suffix extension of every
/// wired step, until the chain ends or every continuation has already been used.
/// The contig is then spelled in one pass: a single allocation pre-sized to the
/// walk's span, the start (k-1)-mer appended code by code, and each suffix spliced
/// in packed form via [`DnaString::extend_from`].
fn walk_from(
    graph: &PakGraph,
    used: &mut [Vec<bool>],
    start_slot: usize,
    start_path: usize,
) -> Contig {
    let mut visited: HashSet<(u32, u32)> = HashSet::new();
    let mut trail: Vec<(u32, u32)> = Vec::new();
    let contig = walk_trail(
        graph,
        used,
        &mut visited,
        &mut trail,
        start_slot,
        start_path,
    );
    for &(s, p) in &trail {
        used[s as usize][p as usize] = true;
    }
    contig
}

/// The stepping core shared by the serial and speculative walks: `used` is
/// read-only; the paths this walk consumes are recorded in `trail` (and
/// mirrored in `visited` for O(1) cycle checks) instead of being flagged
/// directly. A path counts as taken when it is in `used` *or* in `visited`,
/// which makes the serial wrapper (mark the trail afterwards) behave exactly
/// like the historical mark-as-you-go walk.
fn walk_trail(
    graph: &PakGraph,
    used: &[Vec<bool>],
    visited: &mut HashSet<(u32, u32)>,
    trail: &mut Vec<(u32, u32)>,
    start_slot: usize,
    start_path: usize,
) -> Contig {
    let start_node = graph.node(start_slot).expect("start slot is alive");
    let start_k1mer = start_node.k1mer();

    let mut slot = start_slot;
    let mut path_idx = start_path;
    let mut suffixes: Vec<&DnaString> = Vec::new();
    // Bound the walk defensively; each step consumes a path so this cannot loop
    // forever, but the explicit cap keeps malformed graphs from degenerating.
    let max_steps = graph.slot_count().saturating_mul(4) + 16;
    let taken = |used: &[Vec<bool>], visited: &HashSet<(u32, u32)>, s: usize, p: usize| {
        used[s][p] || visited.contains(&(s as u32, p as u32))
    };

    for _ in 0..max_steps {
        let node = match graph.node(slot) {
            Some(n) => n,
            None => break,
        };
        if taken(used, visited, slot, path_idx) {
            break;
        }
        visited.insert((slot as u32, path_idx as u32));
        trail.push((slot as u32, path_idx as u32));

        let path = &node.paths()[path_idx];
        let Some(suffix) = path.suffix.as_ref() else {
            break;
        };
        suffixes.push(suffix);

        // Move to the successor through this suffix. The incoming extension the
        // successor knows us by is the spelled edge minus its own (k-1)-mer.
        let successor_k1mer = node.successor_k1mer(suffix);
        let Some(next_slot) = graph.index_of(&successor_k1mer) else {
            break;
        };
        let incoming = incoming_extension(&node.k1mer(), suffix);

        let next_node = graph.node(next_slot).expect("successor is alive");
        let exact = next_node
            .paths()
            .iter()
            .enumerate()
            .filter(|(i, p)| {
                !taken(used, visited, next_slot, *i) && p.prefix.as_ref() == Some(&incoming)
            })
            .max_by_key(|(_, p)| p.count)
            .map(|(i, _)| i);
        // Compaction can leave the two sides of an edge at different extension lengths
        // (partial transfers); accept a consistent prefix — one string being a suffix
        // of the other — when no exact match remains.
        let next_path = exact.or_else(|| {
            let incoming_text = incoming.to_ascii();
            next_node
                .paths()
                .iter()
                .enumerate()
                .filter(|(i, p)| {
                    if taken(used, visited, next_slot, *i) {
                        return false;
                    }
                    match &p.prefix {
                        Some(prefix) => {
                            let text = prefix.to_ascii();
                            incoming_text.ends_with(&text) || text.ends_with(&incoming_text)
                        }
                        None => false,
                    }
                })
                .max_by_key(|(_, p)| p.count)
                .map(|(i, _)| i)
        });

        match next_path {
            Some(i) => {
                slot = next_slot;
                path_idx = i;
            }
            None => break,
        }
    }

    // Spell the contig in one pre-sized allocation: the walk's span is known
    // exactly, so no growth reallocation and no per-node re-encoding happens.
    let k1_len = start_k1mer.k();
    let span = k1_len + suffixes.iter().map(|s| s.len()).sum::<usize>();
    let mut sequence = DnaString::with_capacity(span);
    for i in 0..k1_len {
        sequence.push_code(((start_k1mer.packed() >> (2 * (k1_len - 1 - i))) & 0b11) as u8);
    }
    for suffix in suffixes {
        sequence.extend_from(suffix);
    }
    debug_assert_eq!(sequence.len(), span);
    Contig::new(sequence)
}

/// The incoming extension a successor node records for the edge `k1mer → suffix`:
/// the first `suffix.len()` bases of `k1mer + suffix` (the spelled edge minus the
/// successor's own (k-1)-mer). Equivalent to
/// `spell_suffix(k1mer, suffix).slice(0, suffix.len())` without materializing the
/// full spelled edge.
fn incoming_extension(k1mer: &Kmer, suffix: &DnaString) -> DnaString {
    let k1_len = k1mer.k();
    let len = suffix.len();
    let mut out = DnaString::with_capacity(len);
    for i in 0..len.min(k1_len) {
        out.push_code(((k1mer.packed() >> (2 * (k1_len - 1 - i))) & 0b11) as u8);
    }
    for code in suffix.codes().take(len.saturating_sub(k1_len)) {
        out.push_code(code);
    }
    out
}

/// Convenience: returns the longest contig spelled by the graph, if any.
pub fn longest_contig(graph: &PakGraph) -> Option<DnaString> {
    generate_contigs(graph, 0)
        .into_iter()
        .map(|c| c.sequence)
        .max_by_key(DnaString::len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compaction::compact;
    use crate::config::PakmanConfig;
    use crate::kmer_count::{count_kmers, KmerCounterConfig};
    use nmp_pak_genome::SequencingRead;

    fn graph_from_reads(reads: &[&str], k: usize) -> PakGraph {
        let reads: Vec<SequencingRead> = reads
            .iter()
            .enumerate()
            .map(|(i, s)| SequencingRead::new(format!("r{i}"), s.parse::<DnaString>().unwrap()))
            .collect();
        let (counted, _) = count_kmers(
            &reads,
            KmerCounterConfig {
                k,
                min_count: 1,
                threads: 1,
            },
        )
        .unwrap();
        PakGraph::from_counted_kmers(&counted, k, 1)
    }

    #[test]
    fn uncompacted_chain_walks_back_to_the_read() {
        let read = "ACGTACCTGATCAG";
        let graph = graph_from_reads(&[read], 5);
        let contigs = generate_contigs(&graph, 0);
        assert_eq!(contigs[0].sequence.to_string(), read);
    }

    #[test]
    fn compacted_chain_walks_back_to_the_read() {
        let read = "ACGTACCTGATCAGTTGCAACGGT";
        let mut graph = graph_from_reads(&[read], 5);
        compact(
            &mut graph,
            &PakmanConfig {
                compaction_node_threshold: 0,
                threads: 1,
                ..PakmanConfig::default()
            },
        );
        let contigs = generate_contigs(&graph, 0);
        assert_eq!(contigs[0].sequence.to_string(), read);
    }

    #[test]
    fn duplicate_reads_do_not_duplicate_contig_content() {
        let read = "ACGTACCTGATCAG";
        let graph = graph_from_reads(&[read, read, read], 5);
        let contigs = generate_contigs(&graph, 0);
        assert_eq!(contigs[0].sequence.to_string(), read);
        // All additional contigs (from duplicated terminal flow) are no longer than
        // the primary contig.
        assert!(contigs.iter().all(|c| c.len() <= read.len()));
    }

    #[test]
    fn two_disjoint_reads_produce_two_contigs() {
        let a = "ACGTACCTGATCAG";
        let b = "GGCCTTAAGTCCTA";
        let graph = graph_from_reads(&[a, b], 5);
        let contigs = generate_contigs(&graph, 0);
        let spelled: Vec<String> = contigs.iter().map(|c| c.sequence.to_string()).collect();
        assert!(
            spelled.contains(&a.to_string()),
            "missing {a} in {spelled:?}"
        );
        assert!(
            spelled.contains(&b.to_string()),
            "missing {b} in {spelled:?}"
        );
    }

    #[test]
    fn min_length_filter_applies() {
        let graph = graph_from_reads(&["ACGTACCTGATCAG"], 5);
        let all = generate_contigs(&graph, 0);
        let filtered = generate_contigs(&graph, 1_000);
        assert!(!all.is_empty());
        assert!(filtered.is_empty());
    }

    #[test]
    fn cyclic_graph_still_terminates_and_covers_sequence() {
        // A perfectly periodic read yields a cycle in the (k-1)-mer graph.
        let read = "ACGACGACGACGACG";
        let graph = graph_from_reads(&[read], 4);
        let contigs = generate_contigs(&graph, 0);
        assert!(!contigs.is_empty());
        let longest = contigs[0].len();
        assert!(longest >= 6, "cycle walk too short: {longest}");
    }

    #[test]
    fn longest_contig_helper() {
        let graph = graph_from_reads(&["ACGTACCTGATCAG", "GGCCTTA"], 5);
        let longest = longest_contig(&graph).unwrap();
        assert_eq!(longest.to_string(), "ACGTACCTGATCAG");
    }

    #[test]
    fn empty_graph_produces_no_contigs() {
        let graph = PakGraph::default();
        assert!(generate_contigs(&graph, 0).is_empty());
        assert!(longest_contig(&graph).is_none());
        let mut sink = Vec::new();
        assert_eq!(write_contigs_fasta(&graph, 0, &mut sink).unwrap(), 0);
        assert!(sink.is_empty());
    }

    #[test]
    fn incoming_extension_matches_the_spelled_edge_slice() {
        let k1mer = Kmer::from_dna(&"ACGTA".parse().unwrap(), 0, 5).unwrap();
        for suffix_text in ["T", "TG", "TGCA", "TGCAT", "TGCATGCAT"] {
            let suffix: DnaString = suffix_text.parse().unwrap();
            let via_spell = crate::macronode::spell_suffix(&k1mer, &suffix).slice(0, suffix.len());
            assert_eq!(
                incoming_extension(&k1mer, &suffix),
                via_spell,
                "suffix {suffix_text}"
            );
        }
    }

    #[test]
    fn streamed_fasta_matches_the_collected_contigs() {
        let reads = ["ACGTACCTGATCAGTTGCAACGGT", "GGCCTTAAGTCCTA"];
        let mut graph = graph_from_reads(&reads, 5);
        compact(
            &mut graph,
            &PakmanConfig {
                compaction_node_threshold: 0,
                threads: 1,
                ..PakmanConfig::default()
            },
        );

        let mut sink = Vec::new();
        let written = write_contigs_fasta(&graph, 0, &mut sink).unwrap();
        let records = nmp_pak_genome::fasta::read_fasta(std::io::Cursor::new(sink)).unwrap();
        assert_eq!(records.len(), written);
        assert!(written >= 2);

        // The streamed records are exactly the collected contigs (walk order vs
        // length order), with self-describing names.
        let mut streamed: Vec<String> = records.iter().map(|r| r.sequence.to_string()).collect();
        let mut collected: Vec<String> = generate_contigs(&graph, 0)
            .iter()
            .map(|c| c.sequence.to_string())
            .collect();
        streamed.sort();
        collected.sort();
        assert_eq!(streamed, collected);
        for (i, record) in records.iter().enumerate() {
            assert_eq!(
                record.name,
                format!("contig_{i} length={}", record.sequence.len())
            );
        }
    }

    #[test]
    fn threaded_walk_is_bit_identical_to_serial() {
        use crate::test_util::reads_for;
        // A messy, repetitive workload: many overlapping reads, cycles from the
        // periodic segment, plus disjoint components — all walk passes engage.
        let mut reads = reads_for(6_000, 18.0, 23);
        reads.extend(
            ["ACGACGACGACGACGACG", "GGCCTTAAGTCCTA", "ACGTACCTGATCAG"]
                .iter()
                .enumerate()
                .map(|(i, s)| SequencingRead::new(format!("x{i}"), s.parse().unwrap())),
        );
        let (counted, _) = count_kmers(
            &reads,
            KmerCounterConfig {
                k: 11,
                min_count: 1,
                threads: 1,
            },
        )
        .unwrap();
        for compacted in [false, true] {
            let mut graph = PakGraph::from_counted_kmers(&counted, 11, 1);
            if compacted {
                compact(
                    &mut graph,
                    &PakmanConfig {
                        k: 11,
                        compaction_node_threshold: 0,
                        threads: 2,
                        ..PakmanConfig::default()
                    },
                );
            }
            for min_length in [0, 30] {
                let serial = generate_contigs(&graph, min_length);
                for threads in [1, 2, 4, 8] {
                    let threaded = generate_contigs_threaded(&graph, min_length, threads);
                    assert_eq!(
                        threaded, serial,
                        "threads={threads} compacted={compacted} min_length={min_length}"
                    );
                }
            }
        }
    }

    #[test]
    fn min_length_filter_applies_to_the_streamed_writer() {
        let graph = graph_from_reads(&["ACGTACCTGATCAG"], 5);
        let mut sink = Vec::new();
        assert_eq!(write_contigs_fasta(&graph, 1_000, &mut sink).unwrap(), 0);
        assert!(sink.is_empty());
    }
}
