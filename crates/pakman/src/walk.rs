//! Graph walk and contig generation (assembly step E, Fig. 2).
//!
//! After Iterative Compaction the PaK-graph is small and its extensions are long, so
//! a simple traversal suffices (the paper measures this step at ~1 % of runtime,
//! Fig. 5). The walk starts at nodes carrying terminal-start flow (reads began there),
//! repeatedly follows the wired through-path with the highest remaining count, and
//! spells out the visited (k-1)-mer plus every suffix extension along the way.

use crate::contig::Contig;
use crate::graph::PakGraph;
use nmp_pak_genome::DnaString;

/// Generates contigs from a (typically compacted) PaK-graph.
///
/// Contigs shorter than `min_length` bases are discarded. The result is sorted by
/// decreasing length.
pub fn generate_contigs(graph: &PakGraph, min_length: usize) -> Vec<Contig> {
    let mut used: Vec<Vec<bool>> = vec![Vec::new(); graph.slot_count()];
    for (slot, node) in graph.iter_alive() {
        used[slot] = vec![false; node.paths().len()];
    }

    let mut contigs = Vec::new();

    // Pass 1: start from true source nodes (no incoming interior flow at all). Reads
    // that merely *start* at an otherwise covered node contribute redundant terminal
    // flow and are not separate contig starts.
    for (slot, node) in graph.iter_alive() {
        if node.incoming_count() > 0 {
            continue;
        }
        for path_idx in 0..node.paths().len() {
            let path = &node.paths()[path_idx];
            if path.suffix.is_some() && !used[slot][path_idx] {
                let contig = walk_from(graph, &mut used, slot, path_idx);
                contigs.push(contig);
            }
        }
    }

    // Pass 2: cover leftovers (cycles or wiring breaks) by starting at any unused
    // interior path whose successor still exists. Residual paths that point at nodes
    // removed by compaction are stale wiring noise, not assembly content.
    for (slot, node) in graph.iter_alive() {
        for path_idx in 0..node.paths().len() {
            let path = &node.paths()[path_idx];
            if path.prefix.is_some() && !used[slot][path_idx] {
                if let Some(suffix) = path.suffix.as_ref() {
                    if graph.contains(&node.successor_k1mer(suffix)) {
                        let contig = walk_from(graph, &mut used, slot, path_idx);
                        contigs.push(contig);
                    }
                }
            }
        }
    }

    // Pass 3: isolated nodes with only terminal flow still carry their (k-1)-mer.
    for (slot, node) in graph.iter_alive() {
        if node.paths().iter().all(|p| p.suffix.is_none()) && used[slot].iter().all(|u| !u) {
            contigs.push(Contig::new(node.k1mer().to_dna_string()));
            for flag in &mut used[slot] {
                *flag = true;
            }
        }
    }

    let mut contigs: Vec<Contig> = contigs
        .into_iter()
        .filter(|c| c.len() >= min_length)
        .collect();
    contigs.sort_by_key(|c| std::cmp::Reverse(c.len()));
    contigs
}

/// Walks forward from `(slot, path_idx)`, spelling the node's (k-1)-mer followed by
/// every suffix extension along the wired path, until the chain ends or every
/// continuation has already been used.
fn walk_from(
    graph: &PakGraph,
    used: &mut [Vec<bool>],
    start_slot: usize,
    start_path: usize,
) -> Contig {
    let start_node = graph.node(start_slot).expect("start slot is alive");
    let mut sequence = start_node.k1mer().to_dna_string();
    let k1_len = start_node.k1mer().k();

    let mut slot = start_slot;
    let mut path_idx = start_path;
    // Bound the walk defensively; each step consumes a path so this cannot loop
    // forever, but the explicit cap keeps malformed graphs from degenerating.
    let max_steps = graph.slot_count().saturating_mul(4) + 16;

    for _ in 0..max_steps {
        let node = match graph.node(slot) {
            Some(n) => n,
            None => break,
        };
        if used[slot][path_idx] {
            break;
        }
        used[slot][path_idx] = true;

        let path = &node.paths()[path_idx];
        let Some(suffix) = path.suffix.as_ref() else {
            break;
        };
        sequence.extend_from(suffix);

        // Move to the successor through this suffix. The incoming extension the
        // successor knows us by is the spelled edge minus its own (k-1)-mer.
        let spell = crate::macronode::spell_suffix(&node.k1mer(), suffix);
        let successor_k1mer = node.successor_k1mer(suffix);
        let Some(next_slot) = graph.index_of(&successor_k1mer) else {
            break;
        };
        let incoming = spell.slice(0, spell.len() - k1_len);

        let next_node = graph.node(next_slot).expect("successor is alive");
        let exact = next_node
            .paths()
            .iter()
            .enumerate()
            .filter(|(i, p)| !used[next_slot][*i] && p.prefix.as_ref() == Some(&incoming))
            .max_by_key(|(_, p)| p.count)
            .map(|(i, _)| i);
        // Compaction can leave the two sides of an edge at different extension lengths
        // (partial transfers); accept a consistent prefix — one string being a suffix
        // of the other — when no exact match remains.
        let next_path = exact.or_else(|| {
            let incoming_text = incoming.to_ascii();
            next_node
                .paths()
                .iter()
                .enumerate()
                .filter(|(i, p)| {
                    if used[next_slot][*i] {
                        return false;
                    }
                    match &p.prefix {
                        Some(prefix) => {
                            let text = prefix.to_ascii();
                            incoming_text.ends_with(&text) || text.ends_with(&incoming_text)
                        }
                        None => false,
                    }
                })
                .max_by_key(|(_, p)| p.count)
                .map(|(i, _)| i)
        });

        match next_path {
            Some(i) => {
                slot = next_slot;
                path_idx = i;
            }
            None => break,
        }
    }

    Contig::new(sequence)
}

/// Convenience: returns the longest contig spelled by the graph, if any.
pub fn longest_contig(graph: &PakGraph) -> Option<DnaString> {
    generate_contigs(graph, 0)
        .into_iter()
        .map(|c| c.sequence)
        .max_by_key(DnaString::len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compaction::compact;
    use crate::config::PakmanConfig;
    use crate::kmer_count::{count_kmers, KmerCounterConfig};
    use nmp_pak_genome::SequencingRead;

    fn graph_from_reads(reads: &[&str], k: usize) -> PakGraph {
        let reads: Vec<SequencingRead> = reads
            .iter()
            .enumerate()
            .map(|(i, s)| SequencingRead::new(format!("r{i}"), s.parse::<DnaString>().unwrap()))
            .collect();
        let (counted, _) = count_kmers(
            &reads,
            KmerCounterConfig {
                k,
                min_count: 1,
                threads: 1,
            },
        )
        .unwrap();
        PakGraph::from_counted_kmers(&counted, k, 1)
    }

    #[test]
    fn uncompacted_chain_walks_back_to_the_read() {
        let read = "ACGTACCTGATCAG";
        let graph = graph_from_reads(&[read], 5);
        let contigs = generate_contigs(&graph, 0);
        assert_eq!(contigs[0].sequence.to_string(), read);
    }

    #[test]
    fn compacted_chain_walks_back_to_the_read() {
        let read = "ACGTACCTGATCAGTTGCAACGGT";
        let mut graph = graph_from_reads(&[read], 5);
        compact(
            &mut graph,
            &PakmanConfig {
                compaction_node_threshold: 0,
                threads: 1,
                ..PakmanConfig::default()
            },
        );
        let contigs = generate_contigs(&graph, 0);
        assert_eq!(contigs[0].sequence.to_string(), read);
    }

    #[test]
    fn duplicate_reads_do_not_duplicate_contig_content() {
        let read = "ACGTACCTGATCAG";
        let graph = graph_from_reads(&[read, read, read], 5);
        let contigs = generate_contigs(&graph, 0);
        assert_eq!(contigs[0].sequence.to_string(), read);
        // All additional contigs (from duplicated terminal flow) are no longer than
        // the primary contig.
        assert!(contigs.iter().all(|c| c.len() <= read.len()));
    }

    #[test]
    fn two_disjoint_reads_produce_two_contigs() {
        let a = "ACGTACCTGATCAG";
        let b = "GGCCTTAAGTCCTA";
        let graph = graph_from_reads(&[a, b], 5);
        let contigs = generate_contigs(&graph, 0);
        let spelled: Vec<String> = contigs.iter().map(|c| c.sequence.to_string()).collect();
        assert!(
            spelled.contains(&a.to_string()),
            "missing {a} in {spelled:?}"
        );
        assert!(
            spelled.contains(&b.to_string()),
            "missing {b} in {spelled:?}"
        );
    }

    #[test]
    fn min_length_filter_applies() {
        let graph = graph_from_reads(&["ACGTACCTGATCAG"], 5);
        let all = generate_contigs(&graph, 0);
        let filtered = generate_contigs(&graph, 1_000);
        assert!(!all.is_empty());
        assert!(filtered.is_empty());
    }

    #[test]
    fn cyclic_graph_still_terminates_and_covers_sequence() {
        // A perfectly periodic read yields a cycle in the (k-1)-mer graph.
        let read = "ACGACGACGACGACG";
        let graph = graph_from_reads(&[read], 4);
        let contigs = generate_contigs(&graph, 0);
        assert!(!contigs.is_empty());
        let longest = contigs[0].len();
        assert!(longest >= 6, "cycle walk too short: {longest}");
    }

    #[test]
    fn longest_contig_helper() {
        let graph = graph_from_reads(&["ACGTACCTGATCAG", "GGCCTTA"], 5);
        let longest = longest_contig(&graph).unwrap();
        assert_eq!(longest.to_string(), "ACGTACCTGATCAG");
    }

    #[test]
    fn empty_graph_produces_no_contigs() {
        let graph = PakGraph::default();
        assert!(generate_contigs(&graph, 0).is_empty());
        assert!(longest_contig(&graph).is_none());
    }
}
