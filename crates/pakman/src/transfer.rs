//! TransferNodes: the messages that carry an invalidated MacroNode's sequence content
//! to its neighbours during Iterative Compaction (Fig. 4 (c)–(d)).

use crate::macronode::{spell_prefix, spell_suffix, MacroNode, ThroughPath};
use nmp_pak_genome::{DnaString, Kmer};

/// Which side of the destination MacroNode a TransferNode updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferSide {
    /// The destination precedes the invalidated node; its matching **suffix**
    /// extension is extended forward (Fig. 4 (d): `new_ext = pred_ext + suffix`).
    Predecessor,
    /// The destination succeeds the invalidated node; its matching **prefix**
    /// extension is extended backward (`new_ext = prefix + succ_ext`).
    Successor,
}

/// A TransferNode extracted from an invalidated MacroNode.
///
/// Extraction for a through-path `(prefix e, suffix f, count c)` of invalidated node
/// `X` produces two TransferNodes:
///
/// * to the **predecessor** `P` (first k-1 bases of `e + X.k1mer`): locate the suffix
///   `s` with `P.k1mer + s == e + X.k1mer` and replace it with `s + f`;
/// * to the **successor** `S` (last k-1 bases of `X.k1mer + f`): locate the prefix `p`
///   with `p + S.k1mer == X.k1mer + f` and replace it with `e + p`.
///
/// Both updates preserve the spelled sequence of the path `P → X → S`, so compaction
/// never loses assembled bases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferNode {
    /// (k-1)-mer of the MacroNode to update.
    pub destination: Kmer,
    /// Which side of the destination is updated.
    pub side: TransferSide,
    /// The existing extension at the destination to locate (`pred_ext` in Fig. 4).
    pub match_ext: DnaString,
    /// The replacement extension (`new_ext` in Fig. 4).
    pub new_ext: DnaString,
    /// Flow count carried by this transfer.
    pub count: u32,
    /// (k-1)-mer of the invalidated source node (for bookkeeping and traces).
    pub source: Kmer,
}

impl TransferNode {
    /// Approximate wire size of this TransferNode in bytes, used by the hardware model
    /// when routing transfers through the crossbar / network bridge.
    pub fn size_bytes(&self) -> usize {
        // destination + source (8 B each), side + count (8 B), packed extensions.
        24 + self.match_ext.len().div_ceil(4) + self.new_ext.len().div_ceil(4)
    }

    /// Extracts the TransferNodes for every interior path of `node` (pipeline stage P2).
    ///
    /// Paths with terminal flow produce no transfers; callers should only invalidate
    /// fully interior nodes (see [`MacroNode::is_fully_interior`]).
    pub fn extract_all(node: &MacroNode) -> Vec<TransferNode> {
        let mut out = Vec::with_capacity(node.paths().len() * 2);
        for path in node.paths() {
            if let Some((pred, succ)) = TransferNode::extract_pair(node, path) {
                out.push(pred);
                out.push(succ);
            }
        }
        out
    }

    /// Extracts the (predecessor, successor) TransferNode pair for one interior path.
    pub fn extract_for_path(node: &MacroNode, path: &ThroughPath) -> Vec<TransferNode> {
        match TransferNode::extract_pair(node, path) {
            Some((pred, succ)) => vec![pred, succ],
            None => Vec::new(),
        }
    }

    /// Extracts the (predecessor, successor) pair for one interior path without
    /// wrapping the result in a `Vec` — the form the parallel P2 stage pushes
    /// straight into its pre-allocated per-thread buffers. Terminal paths yield
    /// `None`.
    pub fn extract_pair(
        node: &MacroNode,
        path: &ThroughPath,
    ) -> Option<(TransferNode, TransferNode)> {
        let (Some(prefix), Some(suffix)) = (&path.prefix, &path.suffix) else {
            return None;
        };
        let k1 = node.k1mer();
        let k1_len = k1.k();

        // Predecessor side.
        let pred_spell = spell_prefix(prefix, &k1); // e + X.k1mer
        let pred_k1mer = crate::macronode::kmer_from_slice(&pred_spell, 0, k1_len);
        let pred_match = pred_spell.slice(k1_len, pred_spell.len() - k1_len);
        let mut pred_new = pred_match.clone();
        pred_new.extend_from(suffix);

        // Successor side.
        let succ_spell = spell_suffix(&k1, suffix); // X.k1mer + f
        let succ_k1mer =
            crate::macronode::kmer_from_slice(&succ_spell, succ_spell.len() - k1_len, k1_len);
        let succ_match = succ_spell.slice(0, succ_spell.len() - k1_len);
        let mut succ_new = prefix.clone();
        succ_new.extend_from(&succ_match);

        Some((
            TransferNode {
                destination: pred_k1mer,
                side: TransferSide::Predecessor,
                match_ext: pred_match,
                new_ext: pred_new,
                count: path.count,
                source: k1,
            },
            TransferNode {
                destination: succ_k1mer,
                side: TransferSide::Successor,
                match_ext: succ_match,
                new_ext: succ_new,
                count: path.count,
                source: k1,
            },
        ))
    }
}

/// The batched inter-shard TransferNode exchange of one compaction iteration —
/// the shared-memory analogue of distributed PaKman's `MPI_Alltoallv` and the
/// cross-channel hop of the NMP hardware.
///
/// [`ShardMailbox::route`] walks the canonical (source-slot-major, path-order)
/// transfer stream **once per iteration** and appends each transfer's index to
/// its destination owner's inbox. Because the walk is a stable partition of the
/// canonical stream, every inbox is *slot-ordered*: transfers addressed to the
/// same destination arrive in exactly the order the serial compactor would have
/// applied them, which is what keeps the sharded P3 bit-identical (path splits
/// compose in delivery order). The mailbox also keeps the traffic ledger — how
/// many transfers and bytes stayed on their source shard versus crossed shards
/// — that the hardware model consumes as measured cross-channel traffic.
#[derive(Debug, Clone, Default)]
pub struct ShardMailbox {
    /// Per destination shard: indices into the canonical transfer stream, in
    /// canonical (therefore per-destination slot) order.
    inboxes: Vec<Vec<u32>>,
    /// Bytes routed shard→shard this iteration, flattened `src * shards + dst`.
    route_bytes: Vec<u64>,
    /// Transfers routed shard→shard this iteration, same flattening — the
    /// count companion of `route_bytes`, consumed when per-(src, dst) flush
    /// records are synthesized from a barriered exchange.
    route_counts: Vec<u64>,
    /// Transfers whose destination shard differs from their source shard.
    cross_shard_transfers: usize,
    /// Total transfers routed this iteration.
    transfers: usize,
    /// Total payload bytes this iteration.
    bytes: u64,
    /// Payload bytes that crossed shards this iteration.
    cross_shard_bytes: u64,
}

impl ShardMailbox {
    /// An empty mailbox for `shard_count` shards.
    pub fn new(shard_count: usize) -> ShardMailbox {
        let shards = shard_count.max(1);
        ShardMailbox {
            inboxes: vec![Vec::new(); shards],
            route_bytes: vec![0; shards * shards],
            route_counts: vec![0; shards * shards],
            ..ShardMailbox::default()
        }
    }

    /// Number of shards this mailbox exchanges between.
    pub fn shard_count(&self) -> usize {
        self.inboxes.len()
    }

    /// Clears the inboxes and per-iteration counters (capacity is kept — the
    /// exchange buffers are reused across iterations, §4.5's pre-allocation
    /// discipline applied to the mailbox).
    pub fn clear(&mut self) {
        for inbox in &mut self.inboxes {
            inbox.clear();
        }
        self.route_bytes.iter_mut().for_each(|b| *b = 0);
        self.route_counts.iter_mut().for_each(|c| *c = 0);
        self.cross_shard_transfers = 0;
        self.transfers = 0;
        self.bytes = 0;
        self.cross_shard_bytes = 0;
    }

    /// Routes the canonical transfer stream: transfer `i` (from source shard
    /// `source_shards(i)`) goes to the inbox of its destination's owner. One
    /// pass, stable, executed once per iteration.
    pub fn route(
        &mut self,
        transfers: &[(usize, TransferNode)],
        source_shards: impl Fn(usize) -> usize,
    ) {
        self.clear();
        let shards = self.inboxes.len();
        debug_assert!(transfers.len() <= u32::MAX as usize);
        for (i, (_, transfer)) in transfers.iter().enumerate() {
            let dst = nmp_pak_genome::shard_of_packed(transfer.destination.packed(), shards);
            let src = source_shards(i);
            debug_assert!(src < shards);
            let bytes = transfer.size_bytes() as u64;
            self.inboxes[dst].push(i as u32);
            self.route_bytes[src * shards + dst] += bytes;
            self.route_counts[src * shards + dst] += 1;
            self.transfers += 1;
            self.bytes += bytes;
            if src != dst {
                self.cross_shard_transfers += 1;
                self.cross_shard_bytes += bytes;
            }
        }
    }

    /// The slot-ordered inbox of destination shard `shard` (indices into the
    /// canonical transfer stream).
    pub fn inbox(&self, shard: usize) -> &[u32] {
        &self.inboxes[shard]
    }

    /// All inboxes, indexed by destination shard.
    pub fn inboxes(&self) -> &[Vec<u32>] {
        &self.inboxes
    }

    /// Bytes routed from `src` shard to `dst` shard this iteration.
    pub fn routed_bytes(&self, src: usize, dst: usize) -> u64 {
        self.route_bytes[src * self.inboxes.len() + dst]
    }

    /// The flattened shard×shard byte matrix (`src * shard_count + dst`).
    pub fn route_bytes(&self) -> &[u64] {
        &self.route_bytes
    }

    /// Transfers routed from `src` shard to `dst` shard this iteration.
    pub fn routed_transfers(&self, src: usize, dst: usize) -> u64 {
        self.route_counts[src * self.inboxes.len() + dst]
    }

    /// Transfers routed this iteration.
    pub fn transfer_count(&self) -> usize {
        self.transfers
    }

    /// Transfers that crossed shards this iteration.
    pub fn cross_shard_transfer_count(&self) -> usize {
        self.cross_shard_transfers
    }

    /// Total payload bytes this iteration.
    pub fn total_bytes(&self) -> u64 {
        self.bytes
    }

    /// Payload bytes that crossed shards this iteration.
    pub fn cross_shard_bytes(&self) -> u64 {
        self.cross_shard_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_pak_genome::Base;

    fn k(text: &str) -> Kmer {
        Kmer::from_ascii(text).unwrap()
    }

    fn d(text: &str) -> DnaString {
        text.parse().unwrap()
    }

    #[test]
    fn paper_fig4_transfer_extraction() {
        // Fig. 4 (c): invalidated node GTCA with prefix 'A' and suffix 'T' (count 6)
        // produces a TransferNode to predecessor AGTC with pred_ext 'A' and
        // new_ext 'AT'.
        let node = MacroNode::from_extensions(k("GTCA"), vec![(Base::A, 6)], vec![(Base::T, 6)]);
        let transfers = TransferNode::extract_all(&node);
        assert_eq!(transfers.len(), 2);

        let pred = transfers
            .iter()
            .find(|t| t.side == TransferSide::Predecessor)
            .unwrap();
        assert_eq!(pred.destination.to_string(), "AGTC");
        assert_eq!(pred.match_ext.to_string(), "A");
        assert_eq!(pred.new_ext.to_string(), "AT");
        assert_eq!(pred.count, 6);

        let succ = transfers
            .iter()
            .find(|t| t.side == TransferSide::Successor)
            .unwrap();
        assert_eq!(succ.destination.to_string(), "TCAT");
        assert_eq!(succ.match_ext.to_string(), "G");
        assert_eq!(succ.new_ext.to_string(), "AG");
        assert_eq!(succ.count, 6);
    }

    #[test]
    fn transfers_preserve_spelled_sequence() {
        // The predecessor update and successor update must describe the same
        // spelled path e + X.k1mer + f.
        let node = MacroNode::from_extensions(k("GTCA"), vec![(Base::C, 4)], vec![(Base::G, 4)]);
        let full_spell = "CGTCAG"; // e + k1mer + f
        let transfers = TransferNode::extract_all(&node);
        let pred = transfers
            .iter()
            .find(|t| t.side == TransferSide::Predecessor)
            .unwrap();
        let succ = transfers
            .iter()
            .find(|t| t.side == TransferSide::Successor)
            .unwrap();
        // predecessor: P.k1mer + new_ext == full spell
        assert_eq!(format!("{}{}", pred.destination, pred.new_ext), full_spell);
        // successor: new_ext + S.k1mer == full spell
        assert_eq!(format!("{}{}", succ.new_ext, succ.destination), full_spell);
    }

    #[test]
    fn multi_base_extensions_are_supported() {
        let mut node = MacroNode::new(k("GTCA"));
        node.push_path(ThroughPath::through(d("CA"), d("TG"), 3));
        let transfers = TransferNode::extract_all(&node);
        let pred = transfers
            .iter()
            .find(|t| t.side == TransferSide::Predecessor)
            .unwrap();
        assert_eq!(pred.destination.to_string(), "CAGT");
        assert_eq!(pred.match_ext.to_string(), "CA");
        assert_eq!(pred.new_ext.to_string(), "CATG");
        let succ = transfers
            .iter()
            .find(|t| t.side == TransferSide::Successor)
            .unwrap();
        assert_eq!(succ.destination.to_string(), "CATG");
        assert_eq!(succ.match_ext.to_string(), "GT");
        assert_eq!(succ.new_ext.to_string(), "CAGT");
        // Both sides still spell CAGTCATG.
        assert_eq!(format!("{}{}", pred.destination, pred.new_ext), "CAGTCATG");
        assert_eq!(format!("{}{}", succ.new_ext, succ.destination), "CAGTCATG");
    }

    #[test]
    fn terminal_paths_produce_no_transfers() {
        let mut node = MacroNode::new(k("GTCA"));
        node.push_path(ThroughPath {
            prefix: None,
            suffix: Some(d("T")),
            count: 2,
        });
        node.push_path(ThroughPath {
            prefix: Some(d("A")),
            suffix: None,
            count: 2,
        });
        assert!(TransferNode::extract_all(&node).is_empty());
    }

    #[test]
    fn mailbox_routing_is_stable_and_fully_accounted() {
        // A small canonical stream: transfers to several destinations, sources
        // attributed round-robin across 3 shards.
        let shards = 3usize;
        let node_a = MacroNode::from_extensions(k("GTCA"), vec![(Base::A, 2)], vec![(Base::T, 2)]);
        let node_b = MacroNode::from_extensions(k("CATG"), vec![(Base::C, 1)], vec![(Base::G, 1)]);
        let mut stream: Vec<(usize, TransferNode)> = Vec::new();
        for (slot, node) in [(0usize, &node_a), (1, &node_b), (2, &node_a)] {
            for t in TransferNode::extract_all(node) {
                stream.push((slot, t));
            }
        }
        let mut mailbox = ShardMailbox::new(shards);
        mailbox.route(&stream, |i| stream[i].0 % shards);

        // Every transfer lands in exactly one inbox, at its owner.
        let total: usize = (0..shards).map(|s| mailbox.inbox(s).len()).sum();
        assert_eq!(total, stream.len());
        assert_eq!(mailbox.transfer_count(), stream.len());
        for s in 0..shards {
            for &i in mailbox.inbox(s) {
                let dest = &stream[i as usize].1.destination;
                assert_eq!(nmp_pak_genome::shard_of_packed(dest.packed(), shards), s);
            }
            // Slot-ordered delivery: inbox indices ascend (stable partition of
            // the canonical stream).
            assert!(mailbox.inbox(s).windows(2).all(|w| w[0] < w[1]));
        }
        // The byte ledger is conserved and splits into stay/cross.
        let expected_bytes: u64 = stream.iter().map(|(_, t)| t.size_bytes() as u64).sum();
        assert_eq!(mailbox.total_bytes(), expected_bytes);
        let matrix_sum: u64 = mailbox.route_bytes().iter().sum();
        assert_eq!(matrix_sum, expected_bytes);
        // The count matrix is conserved too.
        let count_sum: u64 = (0..shards)
            .flat_map(|s| (0..shards).map(move |d| (s, d)))
            .map(|(s, d)| mailbox.routed_transfers(s, d))
            .sum();
        assert_eq!(count_sum as usize, stream.len());
        let diag: u64 = (0..shards).map(|s| mailbox.routed_bytes(s, s)).sum();
        assert_eq!(mailbox.cross_shard_bytes(), expected_bytes - diag);
        // Re-routing after clear reproduces the same assignment.
        let before: Vec<Vec<u32>> = mailbox.inboxes().to_vec();
        mailbox.route(&stream, |i| stream[i].0 % shards);
        assert_eq!(mailbox.inboxes(), &before[..]);
    }

    #[test]
    fn size_bytes_scales_with_extension_length() {
        let node = MacroNode::from_extensions(k("GTCA"), vec![(Base::A, 1)], vec![(Base::T, 1)]);
        let small = &TransferNode::extract_all(&node)[0];
        let mut long_node = MacroNode::new(k("GTCA"));
        long_node.push_path(ThroughPath::through(
            d(&"A".repeat(100)),
            d(&"T".repeat(100)),
            1,
        ));
        let large = &TransferNode::extract_all(&long_node)[0];
        assert!(large.size_bytes() > small.size_bytes());
    }
}
