//! TransferNodes: the messages that carry an invalidated MacroNode's sequence content
//! to its neighbours during Iterative Compaction (Fig. 4 (c)–(d)).

use crate::macronode::{spell_prefix, spell_suffix, MacroNode, ThroughPath};
use nmp_pak_genome::{DnaString, Kmer};

/// Which side of the destination MacroNode a TransferNode updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferSide {
    /// The destination precedes the invalidated node; its matching **suffix**
    /// extension is extended forward (Fig. 4 (d): `new_ext = pred_ext + suffix`).
    Predecessor,
    /// The destination succeeds the invalidated node; its matching **prefix**
    /// extension is extended backward (`new_ext = prefix + succ_ext`).
    Successor,
}

/// A TransferNode extracted from an invalidated MacroNode.
///
/// Extraction for a through-path `(prefix e, suffix f, count c)` of invalidated node
/// `X` produces two TransferNodes:
///
/// * to the **predecessor** `P` (first k-1 bases of `e + X.k1mer`): locate the suffix
///   `s` with `P.k1mer + s == e + X.k1mer` and replace it with `s + f`;
/// * to the **successor** `S` (last k-1 bases of `X.k1mer + f`): locate the prefix `p`
///   with `p + S.k1mer == X.k1mer + f` and replace it with `e + p`.
///
/// Both updates preserve the spelled sequence of the path `P → X → S`, so compaction
/// never loses assembled bases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferNode {
    /// (k-1)-mer of the MacroNode to update.
    pub destination: Kmer,
    /// Which side of the destination is updated.
    pub side: TransferSide,
    /// The existing extension at the destination to locate (`pred_ext` in Fig. 4).
    pub match_ext: DnaString,
    /// The replacement extension (`new_ext` in Fig. 4).
    pub new_ext: DnaString,
    /// Flow count carried by this transfer.
    pub count: u32,
    /// (k-1)-mer of the invalidated source node (for bookkeeping and traces).
    pub source: Kmer,
}

impl TransferNode {
    /// Approximate wire size of this TransferNode in bytes, used by the hardware model
    /// when routing transfers through the crossbar / network bridge.
    pub fn size_bytes(&self) -> usize {
        // destination + source (8 B each), side + count (8 B), packed extensions.
        24 + self.match_ext.len().div_ceil(4) + self.new_ext.len().div_ceil(4)
    }

    /// Extracts the TransferNodes for every interior path of `node` (pipeline stage P2).
    ///
    /// Paths with terminal flow produce no transfers; callers should only invalidate
    /// fully interior nodes (see [`MacroNode::is_fully_interior`]).
    pub fn extract_all(node: &MacroNode) -> Vec<TransferNode> {
        let mut out = Vec::with_capacity(node.paths().len() * 2);
        for path in node.paths() {
            if let Some((pred, succ)) = TransferNode::extract_pair(node, path) {
                out.push(pred);
                out.push(succ);
            }
        }
        out
    }

    /// Extracts the (predecessor, successor) TransferNode pair for one interior path.
    pub fn extract_for_path(node: &MacroNode, path: &ThroughPath) -> Vec<TransferNode> {
        match TransferNode::extract_pair(node, path) {
            Some((pred, succ)) => vec![pred, succ],
            None => Vec::new(),
        }
    }

    /// Extracts the (predecessor, successor) pair for one interior path without
    /// wrapping the result in a `Vec` — the form the parallel P2 stage pushes
    /// straight into its pre-allocated per-thread buffers. Terminal paths yield
    /// `None`.
    pub fn extract_pair(
        node: &MacroNode,
        path: &ThroughPath,
    ) -> Option<(TransferNode, TransferNode)> {
        let (Some(prefix), Some(suffix)) = (&path.prefix, &path.suffix) else {
            return None;
        };
        let k1 = node.k1mer();
        let k1_len = k1.k();

        // Predecessor side.
        let pred_spell = spell_prefix(prefix, &k1); // e + X.k1mer
        let pred_k1mer = crate::macronode::kmer_from_slice(&pred_spell, 0, k1_len);
        let pred_match = pred_spell.slice(k1_len, pred_spell.len() - k1_len);
        let mut pred_new = pred_match.clone();
        pred_new.extend_from(suffix);

        // Successor side.
        let succ_spell = spell_suffix(&k1, suffix); // X.k1mer + f
        let succ_k1mer =
            crate::macronode::kmer_from_slice(&succ_spell, succ_spell.len() - k1_len, k1_len);
        let succ_match = succ_spell.slice(0, succ_spell.len() - k1_len);
        let mut succ_new = prefix.clone();
        succ_new.extend_from(&succ_match);

        Some((
            TransferNode {
                destination: pred_k1mer,
                side: TransferSide::Predecessor,
                match_ext: pred_match,
                new_ext: pred_new,
                count: path.count,
                source: k1,
            },
            TransferNode {
                destination: succ_k1mer,
                side: TransferSide::Successor,
                match_ext: succ_match,
                new_ext: succ_new,
                count: path.count,
                source: k1,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_pak_genome::Base;

    fn k(text: &str) -> Kmer {
        Kmer::from_ascii(text).unwrap()
    }

    fn d(text: &str) -> DnaString {
        text.parse().unwrap()
    }

    #[test]
    fn paper_fig4_transfer_extraction() {
        // Fig. 4 (c): invalidated node GTCA with prefix 'A' and suffix 'T' (count 6)
        // produces a TransferNode to predecessor AGTC with pred_ext 'A' and
        // new_ext 'AT'.
        let node = MacroNode::from_extensions(k("GTCA"), vec![(Base::A, 6)], vec![(Base::T, 6)]);
        let transfers = TransferNode::extract_all(&node);
        assert_eq!(transfers.len(), 2);

        let pred = transfers
            .iter()
            .find(|t| t.side == TransferSide::Predecessor)
            .unwrap();
        assert_eq!(pred.destination.to_string(), "AGTC");
        assert_eq!(pred.match_ext.to_string(), "A");
        assert_eq!(pred.new_ext.to_string(), "AT");
        assert_eq!(pred.count, 6);

        let succ = transfers
            .iter()
            .find(|t| t.side == TransferSide::Successor)
            .unwrap();
        assert_eq!(succ.destination.to_string(), "TCAT");
        assert_eq!(succ.match_ext.to_string(), "G");
        assert_eq!(succ.new_ext.to_string(), "AG");
        assert_eq!(succ.count, 6);
    }

    #[test]
    fn transfers_preserve_spelled_sequence() {
        // The predecessor update and successor update must describe the same
        // spelled path e + X.k1mer + f.
        let node = MacroNode::from_extensions(k("GTCA"), vec![(Base::C, 4)], vec![(Base::G, 4)]);
        let full_spell = "CGTCAG"; // e + k1mer + f
        let transfers = TransferNode::extract_all(&node);
        let pred = transfers
            .iter()
            .find(|t| t.side == TransferSide::Predecessor)
            .unwrap();
        let succ = transfers
            .iter()
            .find(|t| t.side == TransferSide::Successor)
            .unwrap();
        // predecessor: P.k1mer + new_ext == full spell
        assert_eq!(format!("{}{}", pred.destination, pred.new_ext), full_spell);
        // successor: new_ext + S.k1mer == full spell
        assert_eq!(format!("{}{}", succ.new_ext, succ.destination), full_spell);
    }

    #[test]
    fn multi_base_extensions_are_supported() {
        let mut node = MacroNode::new(k("GTCA"));
        node.push_path(ThroughPath::through(d("CA"), d("TG"), 3));
        let transfers = TransferNode::extract_all(&node);
        let pred = transfers
            .iter()
            .find(|t| t.side == TransferSide::Predecessor)
            .unwrap();
        assert_eq!(pred.destination.to_string(), "CAGT");
        assert_eq!(pred.match_ext.to_string(), "CA");
        assert_eq!(pred.new_ext.to_string(), "CATG");
        let succ = transfers
            .iter()
            .find(|t| t.side == TransferSide::Successor)
            .unwrap();
        assert_eq!(succ.destination.to_string(), "CATG");
        assert_eq!(succ.match_ext.to_string(), "GT");
        assert_eq!(succ.new_ext.to_string(), "CAGT");
        // Both sides still spell CAGTCATG.
        assert_eq!(format!("{}{}", pred.destination, pred.new_ext), "CAGTCATG");
        assert_eq!(format!("{}{}", succ.new_ext, succ.destination), "CAGTCATG");
    }

    #[test]
    fn terminal_paths_produce_no_transfers() {
        let mut node = MacroNode::new(k("GTCA"));
        node.push_path(ThroughPath {
            prefix: None,
            suffix: Some(d("T")),
            count: 2,
        });
        node.push_path(ThroughPath {
            prefix: Some(d("A")),
            suffix: None,
            count: 2,
        });
        assert!(TransferNode::extract_all(&node).is_empty());
    }

    #[test]
    fn size_bytes_scales_with_extension_length() {
        let node = MacroNode::from_extensions(k("GTCA"), vec![(Base::A, 1)], vec![(Base::T, 1)]);
        let small = &TransferNode::extract_all(&node)[0];
        let mut long_node = MacroNode::new(k("GTCA"));
        long_node.push_path(ThroughPath::through(
            d(&"A".repeat(100)),
            d(&"T".repeat(100)),
            1,
        ));
        let large = &TransferNode::extract_all(&long_node)[0];
        assert!(large.size_bytes() > small.size_bytes());
    }
}
