//! The staged assembly pipeline: Fig. 2's steps A–E as explicit [`Stage`] objects
//! with typed inter-stage artifacts.
//!
//! The monolithic `PakmanAssembler::assemble` of earlier revisions is decomposed
//! into five stages — [`AccessStage`] (A), [`CountStage`] (B), [`ConstructStage`]
//! (C), [`CompactStage`] (D) and [`WalkStage`] (E) — composed by
//! [`AssemblyPipeline`]. Each stage consumes the previous stage's artifact by
//! value, so the hand-offs are zero-copy and the compiler enforces the A→E order.
//!
//! The pipeline is split into two halves at the C/D boundary:
//!
//! * [`AssemblyPipeline::front`] runs A–C and returns a [`FrontArtifact`];
//! * [`AssemblyPipeline::finish`] runs D–E on a `FrontArtifact`.
//!
//! That split is what the streaming batch scheduler ([`crate::batch`]) exploits to
//! execute the paper's pipelined process flow (§4.4–4.5, Fig. 2): the front halves
//! of later batches run on their own scoped threads while batch *i* is in Iterative
//! Compaction. Both halves are deterministic, so overlapping them cannot change
//! any output bit.
//!
//! Ingestion is pluggable: [`AccessStage`] consumes borrowed slices, borrowed
//! [`ReadChunk`]s pulled from a [`ReadSource`], or (via [`AccessStage::drain`] /
//! [`AssemblyPipeline::run_source`]) an entire streaming source.

use crate::compaction::{compact_controlled, CompactionProfile, CompactionStats};
use crate::config::{PakmanConfig, ShardConfig, SpillConfig};
use crate::contig::Contig;
use crate::control::RunControl;
use crate::error::PakmanError;
use crate::graph::PakGraph;
use crate::kmer_count::{
    count_kmers, count_kmers_spilled_controlled, CountedKmer, KmerCountStats, KmerCounterConfig,
};
use crate::pipeline::PhaseTimings;
use crate::shard::{compact_sharded_controlled, ShardedGraph, ShardingTelemetry};
use crate::spill::SpillTelemetry;
use crate::trace::CompactionTrace;
use crate::walk::generate_contigs_threaded;
use nmp_pak_genome::{ReadChunk, ReadSource, SequencingRead};
use std::time::{Duration, Instant};

/// One assembly stage: a pure function from the previous stage's artifact to the
/// next, with a stable display name.
///
/// `Input` is a trait parameter (not an associated type) so borrowing stages —
/// [`AccessStage`] consumes `&[SequencingRead]` and lends it onward — can be
/// expressed without generic associated types.
pub trait Stage<Input> {
    /// The artifact this stage produces.
    type Output;

    /// Stable stage name (used by logs and the Fig. 5 phase labels).
    fn name(&self) -> &'static str;

    /// Runs the stage.
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError`] when the stage cannot produce its artifact (empty
    /// input, invalid configuration).
    fn run(&self, input: Input) -> Result<Self::Output, PakmanError>;
}

/// Artifact of step A: the validated read set plus its length census.
#[derive(Debug, Clone, Copy)]
pub struct ReadAccess<'r> {
    /// The reads, borrowed from the caller.
    pub reads: &'r [SequencingRead],
    /// Total number of bases across the reads (used by the footprint model).
    pub total_bases: u64,
}

/// Artifact of step B: the pruned, globally sorted counted k-mer stream.
#[derive(Debug, Clone)]
pub struct CountedBatch {
    /// Counted k-mers in ascending packed order.
    pub counted: Vec<CountedKmer>,
    /// Counting statistics (totals, distinct, pruned).
    pub stats: KmerCountStats,
    /// Carried forward from [`ReadAccess`] for the footprint model.
    pub total_read_bases: u64,
    /// External-memory counting telemetry when the spill path ran
    /// ([`SpillConfig`] bounded), `None` on the in-memory path.
    pub spill: Option<SpillTelemetry>,
}

/// The wired, uncompacted PaK-graph in whichever execution shape stage C built
/// it: the monolithic single graph, or the owner-computes sharded graph when
/// [`ShardConfig`] engages sharded execution. Both shapes hold bit-identical
/// node content; they differ only in where compaction's work will execute.
#[derive(Debug)]
pub enum BuiltGraph {
    /// One monolithic graph (the classic path; also `shard_count == 1`).
    Single(PakGraph),
    /// One subgraph per owner-computes shard plus the global rank mapping.
    Sharded(ShardedGraph),
}

impl BuiltGraph {
    /// Number of alive MacroNodes.
    pub fn alive_count(&self) -> usize {
        match self {
            BuiltGraph::Single(graph) => graph.alive_count(),
            BuiltGraph::Sharded(sharded) => sharded.alive_count(),
        }
    }

    /// Sum of MacroNode sizes in bytes over alive nodes.
    pub fn total_size_bytes(&self) -> usize {
        match self {
            BuiltGraph::Single(graph) => graph.total_size_bytes(),
            BuiltGraph::Sharded(sharded) => (0..sharded.shard_count())
                .map(|s| sharded.shard(s).total_size_bytes())
                .sum(),
        }
    }
}

/// Artifact of step C: the wired, uncompacted PaK-graph.
#[derive(Debug)]
pub struct ConstructedGraph {
    /// The freshly built graph (single or sharded — see [`BuiltGraph`]).
    pub graph: BuiltGraph,
    /// Total MacroNode bytes at construction time (footprint model input).
    pub macronode_bytes: u64,
    /// Counting statistics, carried through.
    pub kmer_stats: KmerCountStats,
    /// Read census, carried through.
    pub total_read_bases: u64,
    /// External-memory counting telemetry, carried through.
    pub spill: Option<SpillTelemetry>,
}

/// Artifact of step D: the compacted graph plus compaction telemetry.
#[derive(Debug)]
pub struct CompactedGraph {
    /// The compacted graph, always reassembled into the global slot layout
    /// (sharded runs stitch their shards back together, dead slots included,
    /// so downstream consumers see the identical structure).
    pub graph: PakGraph,
    /// Whole-run compaction statistics.
    pub stats: CompactionStats,
    /// The access trace, when [`PakmanConfig::record_trace`] was set.
    pub trace: Option<CompactionTrace>,
    /// Per-iteration stage timings and checked-node counts.
    pub profile: CompactionProfile,
    /// Measured per-shard load and mailbox traffic (sharded execution only).
    pub sharding: Option<ShardingTelemetry>,
}

/// Reads materialized from a streaming source by [`AccessStage::drain`]: step
/// A's artifact when the input is an [`impl ReadSource`](ReadSource) rather
/// than a borrowed slice.
#[derive(Debug, Clone)]
pub struct DrainedReads {
    /// The materialized reads.
    pub reads: Vec<SequencingRead>,
    /// Total number of bases across the reads.
    pub total_bases: u64,
}

/// Step A: access and distribute reads. In the single-node library this is the
/// bookkeeping pass over the read set (length census for pre-allocation); over
/// a streamed source ([`AccessStage::drain`]) it is also the ingestion pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct AccessStage;

impl AccessStage {
    /// Runs step A over a streaming source: pulls every chunk, materializes the
    /// reads, and performs the length census. This is the convenience path for
    /// running the *unbatched* pipeline off a file — counting needs the whole
    /// batch resident, so the source is drained; bounded-memory consumers use
    /// the batch scheduler ([`crate::batch::BatchAssembler::assemble_source`]),
    /// which keeps at most its in-flight window of chunks alive.
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::EmptyInput`] if the source yields no bases and
    /// propagates source I/O and parse errors.
    pub fn drain<'s, S: ReadSource<'s>>(&self, mut source: S) -> Result<DrainedReads, PakmanError> {
        let mut reads = Vec::with_capacity(source.reads_hint().0);
        while let Some(chunk) = source.next_chunk()? {
            // Move owned chunks; only borrowed ones are copied.
            reads.append(&mut chunk.into_reads());
        }
        let total_bases: u64 = reads.iter().map(|r| r.len() as u64).sum();
        if total_bases == 0 {
            return Err(PakmanError::EmptyInput {
                message: "the read source produced no bases".to_string(),
            });
        }
        Ok(DrainedReads { reads, total_bases })
    }
}

impl<'r> Stage<&'r [SequencingRead]> for AccessStage {
    type Output = ReadAccess<'r>;

    fn name(&self) -> &'static str {
        "A. access & distribute reads"
    }

    fn run(&self, reads: &'r [SequencingRead]) -> Result<ReadAccess<'r>, PakmanError> {
        let total_bases: u64 = reads.iter().map(|r| r.len() as u64).sum();
        if total_bases == 0 {
            return Err(PakmanError::EmptyInput {
                message: "the read set is empty".to_string(),
            });
        }
        Ok(ReadAccess { reads, total_bases })
    }
}

impl<'r, 'c> Stage<&'c ReadChunk<'r>> for AccessStage {
    type Output = ReadAccess<'c>;

    fn name(&self) -> &'static str {
        "A. access & distribute reads"
    }

    fn run(&self, chunk: &'c ReadChunk<'r>) -> Result<ReadAccess<'c>, PakmanError> {
        Stage::<&'c [SequencingRead]>::run(self, chunk.reads())
    }
}

/// Step B: parallel k-mer counting (bucket-major sort/merge fused with the
/// count + prune, see DESIGN.md).
#[derive(Debug, Clone, Copy)]
pub struct CountStage {
    config: KmerCounterConfig,
    spill: SpillConfig,
    /// Owner-hash disk partitions for spill files: the shard count, so spilled
    /// runs align with shard ownership.
    partitions: usize,
}

impl CountStage {
    /// Builds the stage from the pipeline configuration.
    pub fn new(config: &PakmanConfig) -> Self {
        CountStage {
            config: KmerCounterConfig::from(config),
            spill: config.spill,
            partitions: config.shards.shard_count.max(1),
        }
    }

    /// [`Stage::run`] under a [`RunControl`]: on the spilled path the resident
    /// budget is chained into the control's global ledger and cancellation is
    /// polled between ingest waves. Bit-identical to `run` either way.
    ///
    /// # Errors
    ///
    /// Everything `run` returns, plus [`PakmanError::Cancelled`].
    pub fn run_controlled(
        &self,
        access: ReadAccess<'_>,
        control: &RunControl<'_>,
    ) -> Result<CountedBatch, PakmanError> {
        let (counted, stats, spill) = if self.spill.is_bounded() {
            let (counted, stats, telemetry) = count_kmers_spilled_controlled(
                access.reads,
                self.config,
                &self.spill,
                self.partitions,
                control,
            )?;
            (counted, stats, Some(telemetry))
        } else {
            let (counted, stats) = count_kmers(access.reads, self.config)?;
            (counted, stats, None)
        };
        if counted.is_empty() {
            return Err(PakmanError::EmptyInput {
                message: format!(
                    "all k-mers were pruned (min count {})",
                    self.config.min_count
                ),
            });
        }
        Ok(CountedBatch {
            counted,
            stats,
            total_read_bases: access.total_bases,
            spill,
        })
    }
}

impl<'r> Stage<ReadAccess<'r>> for CountStage {
    type Output = CountedBatch;

    fn name(&self) -> &'static str {
        "B. k-mer counting"
    }

    fn run(&self, access: ReadAccess<'r>) -> Result<CountedBatch, PakmanError> {
        self.run_controlled(access, &RunControl::default())
    }
}

/// Step C: MacroNode construction and wiring (parallel single-pass build over the
/// sorted counted stream; shard-parallel per-owner builds under sharded
/// execution).
#[derive(Debug, Clone, Copy)]
pub struct ConstructStage {
    k: usize,
    threads: usize,
    shards: ShardConfig,
}

impl ConstructStage {
    /// Builds the stage from the pipeline configuration.
    pub fn new(config: &PakmanConfig) -> Self {
        ConstructStage {
            k: config.k,
            threads: config.threads,
            shards: config.shards,
        }
    }
}

impl Stage<CountedBatch> for ConstructStage {
    type Output = ConstructedGraph;

    fn name(&self) -> &'static str {
        "C. MacroNode construct & wiring"
    }

    fn run(&self, counted: CountedBatch) -> Result<ConstructedGraph, PakmanError> {
        let graph = if self.shards.is_sharded() {
            BuiltGraph::Sharded(ShardedGraph::from_counted_kmers(
                &counted.counted,
                self.k,
                self.shards.shard_count,
                self.threads,
            ))
        } else {
            BuiltGraph::Single(PakGraph::from_counted_kmers(
                &counted.counted,
                self.k,
                self.threads,
            ))
        };
        let macronode_bytes = graph.total_size_bytes() as u64;
        Ok(ConstructedGraph {
            graph,
            macronode_bytes,
            kmer_stats: counted.stats,
            total_read_bases: counted.total_read_bases,
            spill: counted.spill,
        })
    }
}

/// Step D: Iterative Compaction.
#[derive(Debug, Clone, Copy)]
pub struct CompactStage {
    config: PakmanConfig,
}

impl CompactStage {
    /// Builds the stage from the pipeline configuration.
    pub fn new(config: &PakmanConfig) -> Self {
        CompactStage { config: *config }
    }

    /// [`Stage::run`] under a [`RunControl`]: cancellation is polled between
    /// compaction iterations and the observer sees per-iteration progress.
    /// Bit-identical to `run` under the default control.
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::Cancelled`] when the token fires mid-compaction.
    pub fn run_controlled(
        &self,
        built: ConstructedGraph,
        control: &RunControl<'_>,
    ) -> Result<CompactedGraph, PakmanError> {
        match built.graph {
            BuiltGraph::Single(mut graph) => {
                let outcome = compact_controlled(&mut graph, &self.config, control)?;
                Ok(CompactedGraph {
                    graph,
                    stats: outcome.stats,
                    trace: outcome.trace,
                    profile: outcome.profile,
                    sharding: None,
                })
            }
            BuiltGraph::Sharded(mut sharded) => {
                let (outcome, telemetry) =
                    compact_sharded_controlled(&mut sharded, &self.config, control)?;
                Ok(CompactedGraph {
                    graph: sharded.into_global_graph(),
                    stats: outcome.stats,
                    trace: outcome.trace,
                    profile: outcome.profile,
                    sharding: Some(telemetry),
                })
            }
        }
    }
}

impl Stage<ConstructedGraph> for CompactStage {
    type Output = CompactedGraph;

    fn name(&self) -> &'static str {
        "D. iterative compaction"
    }

    fn run(&self, built: ConstructedGraph) -> Result<CompactedGraph, PakmanError> {
        self.run_controlled(built, &RunControl::default())
    }
}

/// Step E: graph walk and contig generation (speculatively parallel over
/// source nodes, bit-identical to the serial walk — see `pakman::walk`).
#[derive(Debug, Clone, Copy)]
pub struct WalkStage {
    min_contig_length: usize,
    threads: usize,
}

impl WalkStage {
    /// Builds the stage from the pipeline configuration.
    pub fn new(config: &PakmanConfig) -> Self {
        WalkStage {
            min_contig_length: config.min_contig_length,
            threads: config.threads,
        }
    }
}

impl Stage<&CompactedGraph> for WalkStage {
    type Output = Vec<Contig>;

    fn name(&self) -> &'static str {
        "E. graph walk & contig gen"
    }

    fn run(&self, compacted: &CompactedGraph) -> Result<Vec<Contig>, PakmanError> {
        Ok(generate_contigs_threaded(
            &compacted.graph,
            self.min_contig_length,
            self.threads,
        ))
    }
}

/// Everything the front half (stages A–C) of the pipeline produces for one batch.
///
/// This is the artifact handed across threads by the streaming batch scheduler:
/// it owns the constructed graph and carries the statistics and partial timings
/// the back half needs to complete an [`crate::pipeline::AssemblyOutput`].
#[derive(Debug)]
pub struct FrontArtifact {
    /// The constructed (uncompacted) graph plus carried statistics.
    pub built: ConstructedGraph,
    /// Wall-clock of stage A.
    pub access_reads: Duration,
    /// Wall-clock of stage B.
    pub kmer_counting: Duration,
    /// Wall-clock of stage C.
    pub macronode_construction: Duration,
}

/// Everything stages A–D of the pipeline have produced for one run: the
/// compacted graph plus the carried statistics and timings stage E needs to
/// assemble the final [`crate::pipeline::AssemblyOutput`].
///
/// This is the second hand-off point (after [`FrontArtifact`] at the C/D
/// boundary): the job server schedules [`AssemblyPipeline::compact_part`] and
/// [`AssemblyPipeline::walk_part`] as separate work units, so stage work from
/// different jobs can interleave on one shared pool.
#[derive(Debug)]
pub struct CompactArtifact {
    /// The compacted graph plus compaction telemetry.
    pub compacted: CompactedGraph,
    /// Counting statistics, carried through.
    pub kmer_stats: KmerCountStats,
    /// Read census, carried through.
    pub total_read_bases: u64,
    /// MacroNode bytes at construction time, carried through.
    pub macronode_bytes: u64,
    /// External-memory counting telemetry, carried through.
    pub spill: Option<SpillTelemetry>,
    /// Wall-clock of stage A.
    pub access_reads: Duration,
    /// Wall-clock of stage B.
    pub kmer_counting: Duration,
    /// Wall-clock of stage C.
    pub macronode_construction: Duration,
    /// Wall-clock of stage D.
    pub compaction: Duration,
}

/// The staged A–E assembly pipeline.
///
/// Validates its configuration once at construction, then exposes the whole run
/// ([`AssemblyPipeline::run`]) and the two halves the streaming batch scheduler
/// overlaps ([`AssemblyPipeline::front`], [`AssemblyPipeline::finish`]).
#[derive(Debug, Clone, Copy)]
pub struct AssemblyPipeline {
    config: PakmanConfig,
    access: AccessStage,
    count: CountStage,
    construct: ConstructStage,
    compact: CompactStage,
    walk: WalkStage,
}

impl AssemblyPipeline {
    /// Creates a pipeline for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: PakmanConfig) -> Result<AssemblyPipeline, PakmanError> {
        config.validate()?;
        Ok(AssemblyPipeline {
            config,
            access: AccessStage,
            count: CountStage::new(&config),
            construct: ConstructStage::new(&config),
            compact: CompactStage::new(&config),
            walk: WalkStage::new(&config),
        })
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PakmanConfig {
        &self.config
    }

    /// Stage names in execution order (A–E).
    pub fn stage_names(&self) -> [&'static str; 5] {
        [
            Stage::<&[SequencingRead]>::name(&self.access),
            Stage::<ReadAccess<'_>>::name(&self.count),
            Stage::<CountedBatch>::name(&self.construct),
            Stage::<ConstructedGraph>::name(&self.compact),
            Stage::<&CompactedGraph>::name(&self.walk),
        ]
    }

    /// Runs stages A–C.
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::EmptyInput`] when the reads contain no usable
    /// k-mers.
    pub fn front(&self, reads: &[SequencingRead]) -> Result<FrontArtifact, PakmanError> {
        self.front_controlled(reads, &RunControl::default())
    }

    /// [`AssemblyPipeline::front`] under a [`RunControl`]: cancellation is
    /// polled at each stage boundary (and between spill waves inside B), the
    /// observer sees `stage_started` per stage, and the spill budget chains
    /// into the control's ledger. Bit-identical to `front` under the default
    /// control.
    ///
    /// # Errors
    ///
    /// Everything `front` returns, plus [`PakmanError::Cancelled`].
    pub fn front_controlled(
        &self,
        reads: &[SequencingRead],
        control: &RunControl<'_>,
    ) -> Result<FrontArtifact, PakmanError> {
        control.check("stage A (access reads)")?;
        control.stage_started(Stage::<&[SequencingRead]>::name(&self.access));
        let t0 = Instant::now();
        let access = self.access.run(reads)?;
        let access_reads = t0.elapsed();

        control.check("stage B (k-mer counting)")?;
        control.stage_started(Stage::<ReadAccess<'_>>::name(&self.count));
        let t1 = Instant::now();
        let counted = self.count.run_controlled(access, control)?;
        let kmer_counting = t1.elapsed();

        control.check("stage C (MacroNode construction)")?;
        control.stage_started(Stage::<CountedBatch>::name(&self.construct));
        let t2 = Instant::now();
        let built = self.construct.run(counted)?;
        let macronode_construction = t2.elapsed();

        Ok(FrontArtifact {
            built,
            access_reads,
            kmer_counting,
            macronode_construction,
        })
    }

    /// Runs stage D on a front-half artifact under a [`RunControl`]. Together
    /// with [`AssemblyPipeline::walk_part`] this is the scheduler-granular
    /// decomposition of [`AssemblyPipeline::finish`].
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::Cancelled`] when the token fires at the stage
    /// boundary or between compaction iterations.
    pub fn compact_part(
        &self,
        front: FrontArtifact,
        control: &RunControl<'_>,
    ) -> Result<CompactArtifact, PakmanError> {
        let FrontArtifact {
            built,
            access_reads,
            kmer_counting,
            macronode_construction,
        } = front;
        let kmer_stats = built.kmer_stats;
        let total_read_bases = built.total_read_bases;
        let macronode_bytes = built.macronode_bytes;
        let spill = built.spill;

        control.check("stage D (iterative compaction)")?;
        control.stage_started(Stage::<ConstructedGraph>::name(&self.compact));
        let t3 = Instant::now();
        let compacted = self.compact.run_controlled(built, control)?;
        let compaction = t3.elapsed();

        Ok(CompactArtifact {
            compacted,
            kmer_stats,
            total_read_bases,
            macronode_bytes,
            spill,
            access_reads,
            kmer_counting,
            macronode_construction,
            compaction,
        })
    }

    /// Runs stage E on a compacted artifact under a [`RunControl`] and
    /// assembles the final output.
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::Cancelled`] when the token fires at the stage
    /// boundary.
    pub fn walk_part(
        &self,
        mid: CompactArtifact,
        control: &RunControl<'_>,
    ) -> Result<crate::pipeline::AssemblyOutput, PakmanError> {
        let CompactArtifact {
            compacted,
            kmer_stats,
            total_read_bases,
            macronode_bytes,
            spill,
            access_reads,
            kmer_counting,
            macronode_construction,
            compaction,
        } = mid;

        control.check("stage E (graph walk)")?;
        control.stage_started(Stage::<&CompactedGraph>::name(&self.walk));
        let t4 = Instant::now();
        let contigs = self.walk.run(&compacted)?;
        let walk = t4.elapsed();

        let stats = crate::contig::AssemblyStats::from_contigs(&contigs);
        let footprint = crate::memory::MemoryFootprint::from_workload(
            total_read_bases,
            kmer_stats.total_kmers,
            macronode_bytes,
        );

        Ok(crate::pipeline::AssemblyOutput {
            contigs,
            stats,
            timings: PhaseTimings {
                access_reads,
                kmer_counting,
                macronode_construction,
                compaction,
                walk,
            },
            kmer_stats,
            compaction: compacted.stats,
            compaction_profile: compacted.profile,
            trace: compacted.trace,
            sharding: compacted.sharding,
            spill,
            footprint,
            graph: compacted.graph,
        })
    }

    /// Runs stages D–E on a front-half artifact and assembles the final output.
    ///
    /// # Errors
    ///
    /// Propagates stage errors (none occur for a well-formed artifact).
    pub fn finish(
        &self,
        front: FrontArtifact,
    ) -> Result<crate::pipeline::AssemblyOutput, PakmanError> {
        self.finish_controlled(front, &RunControl::default())
    }

    /// [`AssemblyPipeline::finish`] under an explicit [`RunControl`].
    ///
    /// # Errors
    ///
    /// Everything `finish` returns, plus [`PakmanError::Cancelled`].
    pub fn finish_controlled(
        &self,
        front: FrontArtifact,
        control: &RunControl<'_>,
    ) -> Result<crate::pipeline::AssemblyOutput, PakmanError> {
        self.walk_part(self.compact_part(front, control)?, control)
    }

    /// Runs the full pipeline (A–E).
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::EmptyInput`] when the reads contain no usable
    /// k-mers.
    pub fn run(
        &self,
        reads: &[SequencingRead],
    ) -> Result<crate::pipeline::AssemblyOutput, PakmanError> {
        self.finish(self.front(reads)?)
    }

    /// Runs the full pipeline (A–E) under a [`RunControl`]: cancellation at
    /// every stage boundary and between compaction iterations / spill waves,
    /// `stage_started` + `compaction_iteration` progress callbacks, budgets
    /// chained into the control's ledger. Bit-identical to
    /// [`AssemblyPipeline::run`] under the default control.
    ///
    /// # Errors
    ///
    /// Everything `run` returns, plus [`PakmanError::Cancelled`].
    pub fn run_controlled(
        &self,
        reads: &[SequencingRead],
        control: &RunControl<'_>,
    ) -> Result<crate::pipeline::AssemblyOutput, PakmanError> {
        let front = self.front_controlled(reads, control)?;
        self.walk_part(self.compact_part(front, control)?, control)
    }

    /// Runs the full pipeline (A–E) over a streaming source, draining it via
    /// [`AccessStage::drain`]. Ingestion time is charged to stage A's timing.
    ///
    /// # Errors
    ///
    /// Propagates source I/O and parse errors, and returns
    /// [`PakmanError::EmptyInput`] when the source contains no usable k-mers.
    pub fn run_source<'s>(
        &self,
        source: impl ReadSource<'s>,
    ) -> Result<crate::pipeline::AssemblyOutput, PakmanError> {
        self.run_source_controlled(source, &RunControl::default())
    }

    /// [`AssemblyPipeline::run_source`] under an explicit [`RunControl`]: the
    /// drained read bytes are charged against the control's ledger for the
    /// duration of the run, and cancellation/progress behave as in
    /// [`AssemblyPipeline::run_controlled`].
    ///
    /// # Errors
    ///
    /// Everything `run_source` returns, plus [`PakmanError::Cancelled`].
    pub fn run_source_controlled<'s>(
        &self,
        source: impl ReadSource<'s>,
        control: &RunControl<'_>,
    ) -> Result<crate::pipeline::AssemblyOutput, PakmanError> {
        let t0 = Instant::now();
        let drained = self.access.drain(source)?;
        let ingest = t0.elapsed();
        // Account the resident read set against the shared ledger while the
        // front half runs; stages B–E keep their own charges.
        let resident = control.adopt(crate::memory::MemoryBudget::unbounded());
        resident.charge(drained.total_bases);
        let result = self
            .front_controlled(&drained.reads, control)
            .map(|mut front| {
                front.access_reads += ingest;
                front
            })
            .and_then(|front| self.finish_controlled(front, control));
        resident.release(resident.used());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::reads_for;
    use nmp_pak_genome::InMemorySource;

    fn cfg(k: usize) -> PakmanConfig {
        PakmanConfig {
            k,
            min_kmer_count: 1,
            compaction_node_threshold: 10,
            threads: 2,
            record_trace: true,
            ..PakmanConfig::default()
        }
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        assert!(AssemblyPipeline::new(PakmanConfig {
            k: 1,
            ..PakmanConfig::default()
        })
        .is_err());
    }

    #[test]
    fn stage_names_follow_the_paper_order() {
        let pipeline = AssemblyPipeline::new(cfg(17)).unwrap();
        let names = pipeline.stage_names();
        assert!(names[0].starts_with("A."));
        assert!(names[1].starts_with("B."));
        assert!(names[2].starts_with("C."));
        assert!(names[3].starts_with("D."));
        assert!(names[4].starts_with("E."));
    }

    #[test]
    fn front_plus_finish_equals_run() {
        let reads = reads_for(4_000, 15.0, 101);
        let pipeline = AssemblyPipeline::new(cfg(17)).unwrap();
        let split = pipeline.finish(pipeline.front(&reads).unwrap()).unwrap();
        let whole = pipeline.run(&reads).unwrap();
        assert_eq!(split.contigs, whole.contigs);
        assert_eq!(split.stats, whole.stats);
        assert_eq!(split.kmer_stats, whole.kmer_stats);
        assert_eq!(split.compaction, whole.compaction);
        assert_eq!(split.trace, whole.trace);
    }

    #[test]
    fn artifacts_carry_the_census_through() {
        let reads = reads_for(2_000, 10.0, 7);
        let pipeline = AssemblyPipeline::new(cfg(15)).unwrap();
        let front = pipeline.front(&reads).unwrap();
        let expected: u64 = reads.iter().map(|r| r.len() as u64).sum();
        assert_eq!(front.built.total_read_bases, expected);
        assert!(front.built.macronode_bytes > 0);
        assert!(front.built.kmer_stats.total_kmers > 0);
    }

    #[test]
    fn empty_reads_fail_in_stage_a() {
        let pipeline = AssemblyPipeline::new(cfg(15)).unwrap();
        assert!(matches!(
            pipeline.front(&[]),
            Err(PakmanError::EmptyInput { .. })
        ));
    }

    #[test]
    fn sharded_pipeline_matches_single_graph_bit_for_bit() {
        let reads = reads_for(4_000, 15.0, 101);
        let single = AssemblyPipeline::new(cfg(17)).unwrap().run(&reads).unwrap();
        assert!(single.sharding.is_none());
        let sharded_cfg = PakmanConfig {
            shards: ShardConfig::per_channel(8),
            ..cfg(17)
        };
        let sharded = AssemblyPipeline::new(sharded_cfg)
            .unwrap()
            .run(&reads)
            .unwrap();
        assert_eq!(sharded.contigs, single.contigs);
        assert_eq!(sharded.stats, single.stats);
        assert_eq!(sharded.kmer_stats, single.kmer_stats);
        assert_eq!(sharded.compaction, single.compaction);
        assert_eq!(sharded.trace, single.trace);
        let telemetry = sharded.sharding.expect("sharded run records telemetry");
        assert_eq!(telemetry.shard_count, 8);
        assert!(telemetry.total_mailbox_bytes() > 0);
        // The reassembled graph preserves the global slot layout.
        assert_eq!(sharded.graph.slot_count(), single.graph.slot_count());
        for slot in 0..single.graph.slot_count() {
            assert_eq!(sharded.graph.node(slot), single.graph.node(slot));
        }
    }

    #[test]
    fn run_source_matches_run_on_the_same_reads() {
        let reads = reads_for(4_000, 15.0, 101);
        let pipeline = AssemblyPipeline::new(cfg(17)).unwrap();
        let from_slice = pipeline.run(&reads).unwrap();
        let from_source = pipeline
            .run_source(InMemorySource::chunked(&reads, 100))
            .unwrap();
        assert_eq!(from_source.contigs, from_slice.contigs);
        assert_eq!(from_source.stats, from_slice.stats);
        assert_eq!(from_source.kmer_stats, from_slice.kmer_stats);
        assert_eq!(from_source.compaction, from_slice.compaction);
    }

    #[test]
    fn access_stage_drains_sources_and_accepts_chunks() {
        let reads = reads_for(1_000, 5.0, 9);
        let drained = AccessStage
            .drain(InMemorySource::chunked(&reads, 7))
            .unwrap();
        assert_eq!(drained.reads, reads);
        let expected: u64 = reads.iter().map(|r| r.len() as u64).sum();
        assert_eq!(drained.total_bases, expected);

        let chunk = nmp_pak_genome::ReadChunk::Borrowed(&reads[..]);
        let access = Stage::<&nmp_pak_genome::ReadChunk<'_>>::run(&AccessStage, &chunk).unwrap();
        assert_eq!(access.total_bases, expected);

        assert!(matches!(
            AccessStage.drain(InMemorySource::new(&[])),
            Err(PakmanError::EmptyInput { .. })
        ));
    }
}
