//! The end-to-end PaKman assembly pipeline (Fig. 2 steps A–E) with per-phase timing.
//!
//! [`PakmanAssembler`] is the convenience facade over the staged
//! [`crate::stage::AssemblyPipeline`]: one call runs stages A–E and returns the
//! bundled [`AssemblyOutput`]. Callers that need stage-level control — the
//! streaming batch scheduler in [`crate::batch`], custom schedulers, profilers —
//! use the stage API directly.

use crate::compaction::{CompactionProfile, CompactionStats};
use crate::config::PakmanConfig;
use crate::contig::{AssemblyStats, Contig};
use crate::error::PakmanError;
use crate::graph::PakGraph;
use crate::kmer_count::KmerCountStats;
use crate::memory::MemoryFootprint;
use crate::shard::ShardingTelemetry;
use crate::stage::AssemblyPipeline;
use crate::trace::CompactionTrace;
use nmp_pak_genome::{ReadSource, SequencingRead};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Wall-clock time spent in each assembly phase (the quantities behind Fig. 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Step A: accessing and distributing reads (here: partitioning / bookkeeping).
    pub access_reads: Duration,
    /// Step B: k-mer counting.
    pub kmer_counting: Duration,
    /// Step C: MacroNode construction and wiring.
    pub macronode_construction: Duration,
    /// Step D: Iterative Compaction.
    pub compaction: Duration,
    /// Step E: graph walk and contig generation.
    pub walk: Duration,
}

impl PhaseTimings {
    /// Total assembly time.
    pub fn total(&self) -> Duration {
        self.access_reads
            + self.kmer_counting
            + self.macronode_construction
            + self.compaction
            + self.walk
    }

    /// Per-phase shares of the total runtime, in the order A–E. Returns zeros if the
    /// total is zero.
    pub fn shares(&self) -> [f64; 5] {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return [0.0; 5];
        }
        [
            self.access_reads.as_secs_f64() / total,
            self.kmer_counting.as_secs_f64() / total,
            self.macronode_construction.as_secs_f64() / total,
            self.compaction.as_secs_f64() / total,
            self.walk.as_secs_f64() / total,
        ]
    }
}

/// Everything produced by one assembly run.
#[derive(Debug, Clone)]
pub struct AssemblyOutput {
    /// The assembled contigs, longest first.
    pub contigs: Vec<Contig>,
    /// Assembly-quality statistics (N50 etc.).
    pub stats: AssemblyStats,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
    /// k-mer counting statistics.
    pub kmer_stats: KmerCountStats,
    /// Iterative Compaction statistics.
    pub compaction: CompactionStats,
    /// Per-iteration compaction stage timings and checked-node counts (always
    /// recorded; timings vary run to run, the node counts are deterministic).
    pub compaction_profile: CompactionProfile,
    /// Compaction access trace (when requested in the configuration).
    pub trace: Option<CompactionTrace>,
    /// Measured per-shard load and inter-shard mailbox traffic, recorded when
    /// [`PakmanConfig::shards`](crate::config::ShardConfig) engages sharded
    /// execution (`None` on the single-graph path).
    pub sharding: Option<ShardingTelemetry>,
    /// External-memory counting telemetry, recorded when
    /// [`PakmanConfig::spill`](crate::config::SpillConfig) bounds the
    /// resident-byte budget (`None` on the in-memory counting path).
    pub spill: Option<crate::spill::SpillTelemetry>,
    /// Memory-footprint model for this workload.
    pub footprint: MemoryFootprint,
    /// The compacted PaK-graph (useful for merging batches or re-walking).
    pub graph: PakGraph,
}

/// The end-to-end PaKman assembler.
///
/// # Example
///
/// ```
/// use nmp_pak_genome::{DnaString, SequencingRead};
/// use nmp_pak_pakman::{PakmanAssembler, PakmanConfig};
///
/// # fn main() -> Result<(), nmp_pak_pakman::PakmanError> {
/// let reads = vec![SequencingRead::new(
///     "r0",
///     "ACGTACCTGATCAGTTGCAACGGT".parse::<DnaString>().unwrap(),
/// )];
/// let output = PakmanAssembler::new(PakmanConfig {
///     k: 5,
///     min_kmer_count: 1,
///     threads: 1,
///     ..PakmanConfig::default()
/// })
/// .assemble(&reads)?;
/// assert_eq!(output.contigs[0].sequence.to_string(), "ACGTACCTGATCAGTTGCAACGGT");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PakmanAssembler {
    config: PakmanConfig,
}

impl PakmanAssembler {
    /// Creates an assembler with the given configuration.
    pub fn new(config: PakmanConfig) -> Self {
        PakmanAssembler { config }
    }

    /// The assembler configuration.
    pub fn config(&self) -> &PakmanConfig {
        &self.config
    }

    /// Runs the full pipeline on `reads` (stages A–E of the staged
    /// [`AssemblyPipeline`]).
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::InvalidConfig`] for invalid configurations and
    /// [`PakmanError::EmptyInput`] when the reads contain no usable k-mers.
    pub fn assemble(&self, reads: &[SequencingRead]) -> Result<AssemblyOutput, PakmanError> {
        AssemblyPipeline::new(self.config)?.run(reads)
    }

    /// Runs the full pipeline over a streaming [`ReadSource`] (a FASTA/FASTQ
    /// file, a synthetic generator, chunked in-memory reads). The unbatched
    /// pipeline needs the whole read set for counting, so the source is drained
    /// by stage A; use [`crate::batch::BatchAssembler::assemble_source`] for
    /// bounded-memory streaming.
    ///
    /// # Errors
    ///
    /// Propagates source I/O and parse errors plus the errors of
    /// [`PakmanAssembler::assemble`].
    pub fn assemble_source<'s>(
        &self,
        source: impl ReadSource<'s>,
    ) -> Result<AssemblyOutput, PakmanError> {
        AssemblyPipeline::new(self.config)?.run_source(source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_pak_genome::{ReadSimulator, ReferenceGenome, SequencerConfig};

    fn simulated_reads(
        length: usize,
        coverage: f64,
        seed: u64,
    ) -> (ReferenceGenome, Vec<SequencingRead>) {
        let genome = ReferenceGenome::builder()
            .length(length)
            .no_repeats()
            .seed(seed)
            .build()
            .unwrap();
        let reads = ReadSimulator::new(SequencerConfig {
            coverage,
            substitution_error_rate: 0.0,
            seed: seed + 1,
            ..SequencerConfig::default()
        })
        .simulate(&genome)
        .unwrap();
        (genome, reads)
    }

    fn test_config(k: usize) -> PakmanConfig {
        PakmanConfig {
            k,
            min_kmer_count: 1,
            compaction_node_threshold: 10,
            threads: 2,
            record_trace: true,
            ..PakmanConfig::default()
        }
    }

    #[test]
    fn assembles_error_free_reads_into_long_contigs() {
        let (genome, reads) = simulated_reads(8_000, 30.0, 11);
        let output = PakmanAssembler::new(test_config(21))
            .assemble(&reads)
            .unwrap();
        // The assembly should recover most of the genome with few contigs.
        assert!(
            output.stats.total_length as f64 > 0.8 * genome.len() as f64,
            "total assembled {} of genome {}",
            output.stats.total_length,
            genome.len()
        );
        // Deep compaction (threshold 10) trades contiguity for node reduction in this
        // implementation (see DESIGN.md "known deviations"); a shallower run keeps
        // long contigs.
        let shallow = PakmanAssembler::new(PakmanConfig {
            compaction_node_threshold: usize::MAX,
            ..test_config(21)
        })
        .assemble(&reads)
        .unwrap();
        assert!(
            shallow.stats.n50 as f64 > 0.2 * genome.len() as f64,
            "n50 = {}",
            shallow.stats.n50
        );
    }

    #[test]
    fn compaction_dominates_macronode_count_reduction() {
        let (_, reads) = simulated_reads(4_000, 20.0, 5);
        let output = PakmanAssembler::new(test_config(17))
            .assemble(&reads)
            .unwrap();
        assert!(output.compaction.initial_nodes > output.compaction.final_nodes);
        assert!(output.compaction.reduction_factor() > 2.0);
    }

    #[test]
    fn trace_is_recorded_when_requested() {
        let (_, reads) = simulated_reads(2_000, 15.0, 9);
        let output = PakmanAssembler::new(test_config(15))
            .assemble(&reads)
            .unwrap();
        let trace = output.trace.expect("trace requested");
        assert!(trace.iteration_count() > 0);
        assert!(trace.total_transfers() > 0);

        let mut cfg = test_config(15);
        cfg.record_trace = false;
        let output = PakmanAssembler::new(cfg).assemble(&reads).unwrap();
        assert!(output.trace.is_none());
    }

    #[test]
    fn timings_cover_all_phases() {
        let (_, reads) = simulated_reads(2_000, 10.0, 3);
        let output = PakmanAssembler::new(test_config(15))
            .assemble(&reads)
            .unwrap();
        let shares = output.timings.shares();
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(output.timings.total() > Duration::ZERO);
    }

    #[test]
    fn empty_input_is_rejected() {
        let assembler = PakmanAssembler::new(test_config(15));
        assert!(matches!(
            assembler.assemble(&[]),
            Err(PakmanError::EmptyInput { .. })
        ));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let (_, reads) = simulated_reads(1_000, 5.0, 2);
        let assembler = PakmanAssembler::new(PakmanConfig {
            k: 1,
            ..PakmanConfig::default()
        });
        assert!(matches!(
            assembler.assemble(&reads),
            Err(PakmanError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn footprint_reflects_workload_size() {
        let (_, reads_small) = simulated_reads(2_000, 10.0, 7);
        let (_, reads_large) = simulated_reads(8_000, 10.0, 7);
        let small = PakmanAssembler::new(test_config(17))
            .assemble(&reads_small)
            .unwrap();
        let large = PakmanAssembler::new(test_config(17))
            .assemble(&reads_large)
            .unwrap();
        assert!(large.footprint.peak_bytes() > small.footprint.peak_bytes());
        assert!(large.footprint.expansion_factor() > 1.0);
    }
}
