//! Shared fixtures for the crate's unit tests (compiled only under `cfg(test)`).
//!
//! These used to be copy-pasted into the `batch`, `stage` and `kmer_count` test
//! modules; any test that needs a deterministic read set builds it here.

use nmp_pak_genome::{DnaString, ReadSimulator, ReferenceGenome, SequencerConfig, SequencingRead};

/// Simulates an error-free read set over a fresh repeat-free genome of
/// `length` bases at the given coverage. Deterministic per seed.
pub(crate) fn reads_for(length: usize, coverage: f64, seed: u64) -> Vec<SequencingRead> {
    let genome = ReferenceGenome::builder()
        .length(length)
        .no_repeats()
        .seed(seed)
        .build()
        .unwrap();
    ReadSimulator::new(SequencerConfig {
        coverage,
        substitution_error_rate: 0.0,
        seed: seed + 1,
        ..SequencerConfig::default()
    })
    .simulate(&genome)
    .unwrap()
}

/// Builds reads directly from ASCII sequences (ids `r0`, `r1`, …).
pub(crate) fn reads_from(strs: &[&str]) -> Vec<SequencingRead> {
    strs.iter()
        .enumerate()
        .map(|(i, s)| SequencingRead::new(format!("r{i}"), s.parse::<DnaString>().unwrap()))
        .collect()
}
