//! Compaction traces: the record of every MacroNode access performed by Iterative
//! Compaction.
//!
//! The paper evaluates its hardware by generating "memory traces of read and write
//! operations from the actual assembly execution" and feeding them to Ramulator
//! (§5.2), grouping the per-cache-line accesses of one MacroNode under its `mn_idx`.
//! [`CompactionTrace`] is this repository's equivalent: a per-iteration log of which
//! MacroNode slots were read for the invalidation check, which were invalidated, which
//! TransferNodes were routed where, and which destination nodes were updated
//! (read-modify-write). The `memsim` and `nmphw` crates replay it against their DRAM,
//! CPU, GPU and NMP models.

use serde::{Deserialize, Serialize};

/// One invalidation-check access (pipeline stage P1) for a MacroNode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCheck {
    /// Stable slot index of the node (its rank in ascending (k-1)-mer order).
    pub slot: usize,
    /// Node size in bytes at the time of the check (drives how many cache lines /
    /// bursts the access spans and whether the node is offloaded to the CPU).
    pub size_bytes: usize,
    /// Whether the check concluded the node must be invalidated.
    pub invalidated: bool,
}

/// One TransferNode routed from an invalidated node to a neighbour (stages P2→P3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferEvent {
    /// Slot of the invalidated source node.
    pub source_slot: usize,
    /// Slot of the destination (neighbour) node.
    pub dest_slot: usize,
    /// TransferNode payload size in bytes.
    pub size_bytes: usize,
}

/// One destination-node update (stage P3 read-modify-write).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateEvent {
    /// Slot of the updated node.
    pub dest_slot: usize,
    /// Node size in bytes after the update (the write-back size).
    pub size_bytes: usize,
}

/// Everything that happened during one compaction iteration.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationTrace {
    /// Stage P1 accesses: one per alive node, in ascending slot order. This
    /// holds under the frontier scan too — nodes outside the dirty set report
    /// their cached (size, not-invalidated) verdict — so the trace a memory
    /// simulator replays is identical across [`crate::CompactionMode`]s.
    pub checks: Vec<NodeCheck>,
    /// Stage P2/P3 TransferNode routing events.
    pub transfers: Vec<TransferEvent>,
    /// Stage P3 destination updates (one per distinct destination per iteration).
    pub updates: Vec<UpdateEvent>,
}

impl IterationTrace {
    /// Number of nodes that were invalidated this iteration.
    pub fn invalidated_count(&self) -> usize {
        self.checks.iter().filter(|c| c.invalidated).count()
    }

    /// Total bytes read by the invalidation checks.
    pub fn check_bytes(&self) -> u64 {
        self.checks.iter().map(|c| c.size_bytes as u64).sum()
    }

    /// Total bytes carried by TransferNodes.
    pub fn transfer_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.size_bytes as u64).sum()
    }

    /// Total bytes written back by destination updates.
    pub fn update_bytes(&self) -> u64 {
        self.updates.iter().map(|u| u.size_bytes as u64).sum()
    }
}

/// The full trace of an Iterative Compaction run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompactionTrace {
    /// Number of MacroNode slots in the graph (alive + later-invalidated); slot indices
    /// in the iteration records are `< slot_count`.
    pub slot_count: usize,
    /// Initial size in bytes of every slot, indexed by slot. Used by the memory model
    /// to lay MacroNodes out in the address space.
    pub initial_sizes: Vec<usize>,
    /// Per-iteration activity.
    pub iterations: Vec<IterationTrace>,
}

impl CompactionTrace {
    /// Creates an empty trace for a graph with `slot_count` slots.
    pub fn new(slot_count: usize, initial_sizes: Vec<usize>) -> Self {
        debug_assert_eq!(slot_count, initial_sizes.len());
        CompactionTrace {
            slot_count,
            initial_sizes,
            iterations: Vec::new(),
        }
    }

    /// Number of compaction iterations recorded.
    pub fn iteration_count(&self) -> usize {
        self.iterations.len()
    }

    /// Total TransferNodes routed across the whole run.
    pub fn total_transfers(&self) -> usize {
        self.iterations.iter().map(|i| i.transfers.len()).sum()
    }

    /// Total nodes invalidated across the whole run.
    pub fn total_invalidated(&self) -> usize {
        self.iterations
            .iter()
            .map(IterationTrace::invalidated_count)
            .sum()
    }

    /// Total bytes read (checks) plus written (updates), a first-order traffic figure.
    pub fn total_bytes(&self) -> u64 {
        self.iterations
            .iter()
            .map(|i| i.check_bytes() + i.update_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> CompactionTrace {
        let mut trace = CompactionTrace::new(4, vec![100, 200, 300, 400]);
        trace.iterations.push(IterationTrace {
            checks: vec![
                NodeCheck {
                    slot: 0,
                    size_bytes: 100,
                    invalidated: false,
                },
                NodeCheck {
                    slot: 1,
                    size_bytes: 200,
                    invalidated: true,
                },
                NodeCheck {
                    slot: 2,
                    size_bytes: 300,
                    invalidated: false,
                },
            ],
            transfers: vec![
                TransferEvent {
                    source_slot: 1,
                    dest_slot: 0,
                    size_bytes: 32,
                },
                TransferEvent {
                    source_slot: 1,
                    dest_slot: 2,
                    size_bytes: 32,
                },
            ],
            updates: vec![
                UpdateEvent {
                    dest_slot: 0,
                    size_bytes: 120,
                },
                UpdateEvent {
                    dest_slot: 2,
                    size_bytes: 320,
                },
            ],
        });
        trace
    }

    #[test]
    fn iteration_accounting() {
        let trace = sample_trace();
        let it = &trace.iterations[0];
        assert_eq!(it.invalidated_count(), 1);
        assert_eq!(it.check_bytes(), 600);
        assert_eq!(it.transfer_bytes(), 64);
        assert_eq!(it.update_bytes(), 440);
    }

    #[test]
    fn trace_level_accounting() {
        let trace = sample_trace();
        assert_eq!(trace.iteration_count(), 1);
        assert_eq!(trace.total_transfers(), 2);
        assert_eq!(trace.total_invalidated(), 1);
        assert_eq!(trace.total_bytes(), 600 + 440);
        assert_eq!(trace.slot_count, 4);
    }
}
