//! Error type for the PaKman assembler.

use nmp_pak_genome::GenomeError;
use std::fmt;

/// Errors produced while running the PaKman assembly pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PakmanError {
    /// An invalid configuration value was supplied.
    InvalidConfig {
        /// Human readable description of the problem.
        message: String,
    },
    /// The input read set produced no usable k-mers (e.g. all reads shorter than k).
    EmptyInput {
        /// Description of what was empty.
        message: String,
    },
    /// An underlying DNA/sequence error.
    Genome(GenomeError),
    /// A spill-file I/O or framing failure in the external-memory counting path
    /// (unwritable spill directory, truncated or corrupt run file).
    Spill {
        /// Human readable description including the offending file.
        message: String,
    },
    /// The run was cooperatively cancelled via a [`crate::control::CancelToken`].
    ///
    /// Cancellation is checked at stage boundaries and between compaction
    /// iterations, so partially-built artifacts are simply dropped; no output
    /// is produced past a cancellation point.
    Cancelled {
        /// The checkpoint that observed the cancellation (e.g. `"compaction"`,
        /// `"stage B (k-mer counting)"`).
        at: String,
    },
}

impl fmt::Display for PakmanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PakmanError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            PakmanError::EmptyInput { message } => write!(f, "empty input: {message}"),
            PakmanError::Genome(err) => write!(f, "genome error: {err}"),
            PakmanError::Spill { message } => write!(f, "spill error: {message}"),
            PakmanError::Cancelled { at } => write!(f, "cancelled at {at}"),
        }
    }
}

impl std::error::Error for PakmanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PakmanError::Genome(err) => Some(err),
            _ => None,
        }
    }
}

impl From<GenomeError> for PakmanError {
    fn from(err: GenomeError) -> Self {
        PakmanError::Genome(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = PakmanError::InvalidConfig {
            message: "k must be at most 32".to_string(),
        };
        assert!(err.to_string().contains("k must be at most 32"));

        let err = PakmanError::EmptyInput {
            message: "no reads".to_string(),
        };
        assert!(err.to_string().contains("no reads"));

        let err = PakmanError::Spill {
            message: "truncated run in part-3.runs".to_string(),
        };
        assert!(err.to_string().contains("part-3.runs"));
    }

    #[test]
    fn genome_errors_convert_and_chain() {
        use std::error::Error;
        let err: PakmanError = GenomeError::InvalidK { k: 99 }.into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PakmanError>();
    }
}
