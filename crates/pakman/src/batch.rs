//! Customized batch processing (§4.4 of the paper).
//!
//! The input read set is partitioned into batches that are assembled sequentially;
//! each batch's compacted PaK-graph is kept (they are small — tens of MB in the
//! paper) and all of them are merged before the final graph walk. This trades a
//! lower peak memory footprint against contig quality: very small batches fragment
//! the graph (k-mers split across batches fall below the pruning threshold, and the
//! per-batch compaction takes divergent routes), which is the N50-vs-batch-size
//! trade-off of Table 1.

use crate::compaction::CompactionStats;
use crate::config::PakmanConfig;
use crate::contig::{AssemblyStats, Contig};
use crate::error::PakmanError;
use crate::graph::PakGraph;
use crate::memory::MemoryFootprint;
use crate::pipeline::{PakmanAssembler, PhaseTimings};
use crate::walk::generate_contigs;
use nmp_pak_genome::SequencingRead;

/// A plan dividing a read set into batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    /// Read-index ranges, one per batch.
    ranges: Vec<std::ops::Range<usize>>,
}

impl BatchPlan {
    /// Splits `read_count` reads into batches of `batch_fraction` of the input each
    /// (e.g. `0.1` → 10 batches). A fraction of 1.0 (or ≥ 1.0) yields a single batch.
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::InvalidConfig`] if the fraction is not positive or the
    /// read count is zero.
    pub fn by_fraction(read_count: usize, batch_fraction: f64) -> Result<BatchPlan, PakmanError> {
        if read_count == 0 {
            return Err(PakmanError::InvalidConfig {
                message: "cannot plan batches over zero reads".to_string(),
            });
        }
        if batch_fraction.is_nan() || batch_fraction <= 0.0 {
            return Err(PakmanError::InvalidConfig {
                message: format!("batch fraction {batch_fraction} must be positive"),
            });
        }
        let fraction = batch_fraction.min(1.0);
        let batch_count = (1.0 / fraction).round().max(1.0) as usize;
        let base = read_count / batch_count;
        let remainder = read_count % batch_count;
        let mut ranges = Vec::with_capacity(batch_count);
        let mut start = 0usize;
        for i in 0..batch_count {
            let len = base + usize::from(i < remainder);
            if len == 0 {
                continue;
            }
            ranges.push(start..start + len);
            start += len;
        }
        Ok(BatchPlan { ranges })
    }

    /// Number of batches.
    pub fn batch_count(&self) -> usize {
        self.ranges.len()
    }

    /// The read-index ranges, one per batch.
    pub fn ranges(&self) -> &[std::ops::Range<usize>] {
        &self.ranges
    }
}

/// Output of a batched assembly run.
#[derive(Debug, Clone)]
pub struct BatchAssemblyOutput {
    /// Contigs generated from the merged compacted graph.
    pub contigs: Vec<Contig>,
    /// Assembly-quality statistics.
    pub stats: AssemblyStats,
    /// Per-batch compaction statistics.
    pub batch_compaction: Vec<CompactionStats>,
    /// Per-batch phase timings.
    pub batch_timings: Vec<PhaseTimings>,
    /// Peak footprint of the largest single batch (the batched peak, §4.4).
    pub peak_batch_footprint: MemoryFootprint,
    /// Footprint the same workload would need without batching.
    pub unbatched_footprint: MemoryFootprint,
    /// The merged compacted graph.
    pub merged_graph: PakGraph,
}

impl BatchAssemblyOutput {
    /// Memory-footprint reduction achieved by batching (unbatched / batched peak).
    pub fn footprint_reduction(&self) -> f64 {
        let batched = self.peak_batch_footprint.peak_bytes();
        if batched == 0 {
            return 0.0;
        }
        self.unbatched_footprint.peak_bytes() as f64 / batched as f64
    }
}

/// Assembles a read set batch-by-batch and merges the compacted graphs.
#[derive(Debug, Clone)]
pub struct BatchAssembler {
    config: PakmanConfig,
    batch_fraction: f64,
}

impl BatchAssembler {
    /// Creates a batch assembler processing `batch_fraction` of the reads at a time.
    pub fn new(config: PakmanConfig, batch_fraction: f64) -> Self {
        BatchAssembler {
            config,
            batch_fraction,
        }
    }

    /// The configured batch fraction.
    pub fn batch_fraction(&self) -> f64 {
        self.batch_fraction
    }

    /// Runs the batched assembly.
    ///
    /// # Errors
    ///
    /// Propagates configuration and empty-input errors from the per-batch pipeline.
    pub fn assemble(&self, reads: &[SequencingRead]) -> Result<BatchAssemblyOutput, PakmanError> {
        self.config.validate()?;
        let plan = BatchPlan::by_fraction(reads.len(), self.batch_fraction)?;
        let assembler = PakmanAssembler::new(self.config);

        let mut merged_nodes = Vec::new();
        let mut batch_compaction = Vec::with_capacity(plan.batch_count());
        let mut batch_timings = Vec::with_capacity(plan.batch_count());
        let mut peak_batch_footprint = MemoryFootprint::default();
        let mut total_read_bases = 0u64;
        let mut total_kmers = 0u64;
        let mut total_macronode_bytes = 0u64;

        for range in plan.ranges() {
            let batch = &reads[range.clone()];
            let output = match assembler.assemble(batch) {
                Ok(out) => out,
                // A batch that is entirely pruned away contributes nothing; this can
                // happen for very small batches, which is precisely the quality
                // degradation the batching trade-off studies.
                Err(PakmanError::EmptyInput { .. }) => continue,
                Err(other) => return Err(other),
            };
            total_read_bases += batch.iter().map(|r| r.len() as u64).sum::<u64>();
            total_kmers += output.kmer_stats.total_kmers;
            total_macronode_bytes += output.footprint.macronode_bytes;
            if output.footprint.peak_bytes() > peak_batch_footprint.peak_bytes() {
                peak_batch_footprint = output.footprint;
            }
            batch_compaction.push(output.compaction);
            batch_timings.push(output.timings);
            merged_nodes.extend(output.graph.into_nodes());
        }

        if merged_nodes.is_empty() {
            return Err(PakmanError::EmptyInput {
                message: "no batch produced any MacroNodes".to_string(),
            });
        }

        // Merge compacted PaK-graphs: nodes sharing a (k-1)-mer have their through-path
        // lists concatenated. Because every batch covers the same genome at reduced
        // coverage, the merged graph spells each region several times; contig-level
        // deduplication keeps one copy of each assembled region.
        let merged_graph = merge_nodes(merged_nodes, self.config.k);
        let raw_contigs = generate_contigs(&merged_graph, self.config.min_contig_length);
        let contigs = dedup_contigs(raw_contigs, self.config.k);
        let stats = AssemblyStats::from_contigs(&contigs);
        let unbatched_footprint =
            MemoryFootprint::from_workload(total_read_bases, total_kmers, total_macronode_bytes);

        Ok(BatchAssemblyOutput {
            contigs,
            stats,
            batch_compaction,
            batch_timings,
            peak_batch_footprint,
            unbatched_footprint,
            merged_graph,
        })
    }
}

/// Drops contigs whose sequence content is already represented by longer contigs.
///
/// Contigs are accepted longest-first; a candidate is discarded when at least 80 % of
/// its k-mers already appear in accepted contigs. This is the standard containment
/// filter used when per-batch assemblies of the same genome are combined.
fn dedup_contigs(mut contigs: Vec<Contig>, k: usize) -> Vec<Contig> {
    use nmp_pak_genome::Kmer;
    use std::collections::HashSet;

    let k = k.clamp(2, 31);
    contigs.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let mut seen: HashSet<u64> = HashSet::new();
    let mut kept = Vec::with_capacity(contigs.len());
    for contig in contigs {
        if contig.len() < k {
            // Too short to fingerprint; keep only if nothing comparable was kept yet.
            if kept.is_empty() {
                kept.push(contig);
            }
            continue;
        }
        let kmers: Vec<u64> = Kmer::iter_windows(&contig.sequence, k)
            .expect("length checked above")
            .map(|kmer| kmer.packed())
            .collect();
        let known = kmers.iter().filter(|km| seen.contains(km)).count();
        if (known as f64) < 0.8 * kmers.len() as f64 {
            seen.extend(kmers);
            kept.push(contig);
        }
    }
    kept
}

fn merge_nodes(nodes: Vec<crate::macronode::MacroNode>, k: usize) -> PakGraph {
    // Sort-and-scan merge of duplicate (k-1)-mers: the stable sort keeps batch
    // order among duplicates, so the merged node carries its paths in the same
    // order a map-based merge would have produced — without per-entry allocation.
    let mut nodes = nodes;
    nodes.sort_by_key(crate::macronode::MacroNode::k1mer);
    let mut merged: Vec<crate::macronode::MacroNode> = Vec::with_capacity(nodes.len());
    for node in nodes {
        match merged.last_mut() {
            Some(last) if last.k1mer() == node.k1mer() => {
                for path in node.paths() {
                    last.push_path(path.clone());
                }
            }
            _ => merged.push(node),
        }
    }
    PakGraph::from_nodes(merged, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_pak_genome::{ReadSimulator, ReferenceGenome, SequencerConfig};

    fn reads_for(length: usize, coverage: f64, seed: u64) -> Vec<SequencingRead> {
        let genome = ReferenceGenome::builder()
            .length(length)
            .no_repeats()
            .seed(seed)
            .build()
            .unwrap();
        ReadSimulator::new(SequencerConfig {
            coverage,
            substitution_error_rate: 0.0,
            seed: seed + 1,
            ..SequencerConfig::default()
        })
        .simulate(&genome)
        .unwrap()
    }

    fn cfg(k: usize) -> PakmanConfig {
        PakmanConfig {
            k,
            min_kmer_count: 1,
            compaction_node_threshold: 10,
            threads: 2,
            ..PakmanConfig::default()
        }
    }

    #[test]
    fn plan_covers_all_reads_without_overlap() {
        let plan = BatchPlan::by_fraction(1003, 0.1).unwrap();
        assert_eq!(plan.batch_count(), 10);
        let mut covered = 0usize;
        let mut last_end = 0usize;
        for range in plan.ranges() {
            assert_eq!(range.start, last_end);
            covered += range.len();
            last_end = range.end;
        }
        assert_eq!(covered, 1003);
    }

    #[test]
    fn full_fraction_is_one_batch() {
        let plan = BatchPlan::by_fraction(100, 1.0).unwrap();
        assert_eq!(plan.batch_count(), 1);
        let plan = BatchPlan::by_fraction(100, 5.0).unwrap();
        assert_eq!(plan.batch_count(), 1);
    }

    #[test]
    fn invalid_plans_are_rejected() {
        assert!(BatchPlan::by_fraction(0, 0.1).is_err());
        assert!(BatchPlan::by_fraction(10, 0.0).is_err());
        assert!(BatchPlan::by_fraction(10, -0.5).is_err());
    }

    #[test]
    fn batched_assembly_produces_contigs() {
        let reads = reads_for(6_000, 20.0, 21);
        let output = BatchAssembler::new(cfg(17), 0.25).assemble(&reads).unwrap();
        assert!(!output.contigs.is_empty());
        assert!(output.stats.total_length > 3_000);
        assert_eq!(output.batch_compaction.len(), 4);
    }

    #[test]
    fn batching_reduces_peak_footprint() {
        let reads = reads_for(6_000, 20.0, 33);
        let output = BatchAssembler::new(cfg(17), 0.2).assemble(&reads).unwrap();
        assert!(
            output.footprint_reduction() > 2.0,
            "reduction = {}",
            output.footprint_reduction()
        );
    }

    #[test]
    fn smaller_batches_do_not_improve_n50() {
        // Table 1's trend: N50 is non-increasing as the batch size shrinks.
        let reads = reads_for(8_000, 25.0, 55);
        let full = BatchAssembler::new(cfg(17), 1.0).assemble(&reads).unwrap();
        let tenth = BatchAssembler::new(cfg(17), 0.1).assemble(&reads).unwrap();
        assert!(
            tenth.stats.n50 <= full.stats.n50,
            "tenth = {}, full = {}",
            tenth.stats.n50,
            full.stats.n50
        );
    }

    #[test]
    fn single_batch_matches_unbatched_pipeline() {
        // A single batch runs the same pipeline; the only difference is the final
        // contig-containment dedup, so the assembled content must agree closely.
        let reads = reads_for(4_000, 15.0, 77);
        let unbatched = PakmanAssembler::new(cfg(17)).assemble(&reads).unwrap();
        let single_batch = BatchAssembler::new(cfg(17), 1.0).assemble(&reads).unwrap();
        let ratio = single_batch.stats.total_length as f64 / unbatched.stats.total_length as f64;
        // The containment dedup drops reverse-strand / repeat duplicates, so the
        // single-batch total is bounded by the unbatched total but stays the same
        // order of magnitude, and the longest contig is identical.
        assert!((0.4..=1.0).contains(&ratio), "ratio = {ratio}");
        assert!(single_batch.stats.largest_contig == unbatched.stats.largest_contig);
    }
}
