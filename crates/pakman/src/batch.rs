//! Customized batch processing (§4.4 of the paper) with overlapped batch
//! streaming (§4.5, Fig. 2).
//!
//! The input read set is partitioned into batches; each batch's compacted
//! PaK-graph is kept (they are small — tens of MB in the paper) and all of them
//! are merged before the final graph walk. This trades a lower peak memory
//! footprint against contig quality: very small batches fragment the graph
//! (k-mers split across batches fall below the pruning threshold, and the
//! per-batch compaction takes divergent routes), which is the N50-vs-batch-size
//! trade-off of Table 1.
//!
//! Batches flow through the staged pipeline ([`crate::stage::AssemblyPipeline`])
//! under a [`BatchSchedule`]:
//!
//! * [`BatchSchedule::Sequential`] runs each batch A→E before starting the next —
//!   the original PaKman process flow.
//! * [`BatchSchedule::Overlapped`] (the default) executes the paper's pipelined
//!   flow for real: while batch *i* runs Iterative Compaction and the walk
//!   (stages D–E) on the calling thread, the counting and construction front
//!   (stages A–C) of batch *i + 1* runs on its own scoped thread.
//!
//! Both schedules are **bit-identical**: every batch is a deterministic function
//! of its reads alone, and per-batch outputs are merged in batch-index order
//! regardless of completion order (the determinism contract of DESIGN.md).

use crate::compaction::CompactionStats;
use crate::config::PakmanConfig;
use crate::contig::{AssemblyStats, Contig};
use crate::error::PakmanError;
use crate::graph::PakGraph;
use crate::memory::MemoryFootprint;
use crate::pipeline::{AssemblyOutput, PhaseTimings};
use crate::stage::AssemblyPipeline;
use crate::trace::CompactionTrace;
use crate::walk::generate_contigs;
use nmp_pak_genome::SequencingRead;

/// A plan dividing a read set into batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    /// Read-index ranges, one per batch.
    ranges: Vec<std::ops::Range<usize>>,
}

impl BatchPlan {
    /// Splits `read_count` reads into batches of `batch_fraction` of the input each
    /// (e.g. `0.1` → 10 batches). A fraction of 1.0 (or ≥ 1.0) yields a single batch.
    ///
    /// Every produced range is non-empty and the ranges cover `0..read_count`
    /// exactly once: a fraction small enough that the rounded batch count exceeds
    /// the read count is clamped to one read per batch.
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::InvalidConfig`] if the fraction is not positive or the
    /// read count is zero.
    pub fn by_fraction(read_count: usize, batch_fraction: f64) -> Result<BatchPlan, PakmanError> {
        if read_count == 0 {
            return Err(PakmanError::InvalidConfig {
                message: "cannot plan batches over zero reads".to_string(),
            });
        }
        if batch_fraction.is_nan() || batch_fraction <= 0.0 {
            return Err(PakmanError::InvalidConfig {
                message: format!("batch fraction {batch_fraction} must be positive"),
            });
        }
        let fraction = batch_fraction.min(1.0);
        // Clamp to the read count: `1.0 / fraction` can round to more batches than
        // there are reads (float→usize casts saturate, so even 1e-300 is safe),
        // and a plan must never contain an empty batch.
        let batch_count = ((1.0 / fraction).round().max(1.0) as usize).min(read_count);
        let base = read_count / batch_count;
        let remainder = read_count % batch_count;
        let mut ranges = Vec::with_capacity(batch_count);
        let mut start = 0usize;
        for i in 0..batch_count {
            let len = base + usize::from(i < remainder);
            debug_assert!(len > 0, "clamped plans have no empty batches");
            ranges.push(start..start + len);
            start += len;
        }
        debug_assert_eq!(start, read_count, "plan must cover every read exactly once");
        Ok(BatchPlan { ranges })
    }

    /// Number of batches.
    pub fn batch_count(&self) -> usize {
        self.ranges.len()
    }

    /// The read-index ranges, one per batch.
    pub fn ranges(&self) -> &[std::ops::Range<usize>] {
        &self.ranges
    }
}

/// How the batches are driven through the staged pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BatchSchedule {
    /// Each batch runs A→E to completion before the next batch starts (the
    /// original sequential-stage process flow).
    Sequential,
    /// The paper's pipelined flow: stages A–C of batch *i + 1* run on a scoped
    /// worker thread while batch *i* runs stages D–E on the calling thread.
    /// Output is bit-identical to [`BatchSchedule::Sequential`].
    #[default]
    Overlapped,
}

/// Output of a batched assembly run.
#[derive(Debug, Clone)]
pub struct BatchAssemblyOutput {
    /// Contigs generated from the merged compacted graph.
    pub contigs: Vec<Contig>,
    /// Assembly-quality statistics.
    pub stats: AssemblyStats,
    /// Per-batch compaction statistics, in batch-index order.
    pub batch_compaction: Vec<CompactionStats>,
    /// Per-batch phase timings, in batch-index order.
    pub batch_timings: Vec<PhaseTimings>,
    /// Per-batch compaction traces, in batch-index order (empty unless
    /// [`PakmanConfig::record_trace`] is set).
    pub batch_traces: Vec<CompactionTrace>,
    /// Peak footprint of the largest single batch (the batched peak, §4.4).
    pub peak_batch_footprint: MemoryFootprint,
    /// Footprint the same workload would need without batching.
    pub unbatched_footprint: MemoryFootprint,
    /// The merged compacted graph.
    pub merged_graph: PakGraph,
}

impl BatchAssemblyOutput {
    /// Memory-footprint reduction achieved by batching (unbatched / batched peak).
    pub fn footprint_reduction(&self) -> f64 {
        let batched = self.peak_batch_footprint.peak_bytes();
        if batched == 0 {
            return 0.0;
        }
        self.unbatched_footprint.peak_bytes() as f64 / batched as f64
    }
}

/// Assembles a read set batch-by-batch and merges the compacted graphs.
#[derive(Debug, Clone)]
pub struct BatchAssembler {
    config: PakmanConfig,
    batch_fraction: f64,
    schedule: BatchSchedule,
}

impl BatchAssembler {
    /// Creates a batch assembler processing `batch_fraction` of the reads at a
    /// time, with the default [`BatchSchedule::Overlapped`] streaming schedule.
    pub fn new(config: PakmanConfig, batch_fraction: f64) -> Self {
        BatchAssembler::with_schedule(config, batch_fraction, BatchSchedule::default())
    }

    /// Creates a batch assembler with an explicit schedule.
    pub fn with_schedule(
        config: PakmanConfig,
        batch_fraction: f64,
        schedule: BatchSchedule,
    ) -> Self {
        BatchAssembler {
            config,
            batch_fraction,
            schedule,
        }
    }

    /// The configured batch fraction.
    pub fn batch_fraction(&self) -> f64 {
        self.batch_fraction
    }

    /// The configured schedule.
    pub fn schedule(&self) -> BatchSchedule {
        self.schedule
    }

    /// Runs the batched assembly under the configured schedule.
    ///
    /// # Errors
    ///
    /// Propagates configuration and empty-input errors from the per-batch pipeline.
    pub fn assemble(&self, reads: &[SequencingRead]) -> Result<BatchAssemblyOutput, PakmanError> {
        let pipeline = AssemblyPipeline::new(self.config)?;
        let plan = BatchPlan::by_fraction(reads.len(), self.batch_fraction)?;

        let outputs = match self.schedule {
            BatchSchedule::Sequential => run_sequential(&pipeline, reads, plan.ranges())?,
            BatchSchedule::Overlapped => run_overlapped(&pipeline, reads, plan.ranges())?,
        };
        self.merge(reads, &plan, outputs)
    }

    /// Merges per-batch outputs (in batch-index order) into the final result.
    fn merge(
        &self,
        reads: &[SequencingRead],
        plan: &BatchPlan,
        outputs: Vec<Option<AssemblyOutput>>,
    ) -> Result<BatchAssemblyOutput, PakmanError> {
        let mut merged_nodes = Vec::new();
        let mut batch_compaction = Vec::with_capacity(plan.batch_count());
        let mut batch_timings = Vec::with_capacity(plan.batch_count());
        let mut batch_traces = Vec::new();
        let mut peak_batch_footprint = MemoryFootprint::default();
        let mut total_read_bases = 0u64;
        let mut total_kmers = 0u64;
        let mut total_macronode_bytes = 0u64;

        for (range, output) in plan.ranges().iter().zip(outputs) {
            // A batch that is entirely pruned away contributes nothing; this can
            // happen for very small batches, which is precisely the quality
            // degradation the batching trade-off studies.
            let Some(output) = output else { continue };
            let batch = &reads[range.clone()];
            total_read_bases += batch.iter().map(|r| r.len() as u64).sum::<u64>();
            total_kmers += output.kmer_stats.total_kmers;
            total_macronode_bytes += output.footprint.macronode_bytes;
            if output.footprint.peak_bytes() > peak_batch_footprint.peak_bytes() {
                peak_batch_footprint = output.footprint;
            }
            batch_compaction.push(output.compaction);
            batch_timings.push(output.timings);
            if let Some(trace) = output.trace {
                batch_traces.push(trace);
            }
            merged_nodes.extend(output.graph.into_nodes());
        }

        if merged_nodes.is_empty() {
            return Err(PakmanError::EmptyInput {
                message: "no batch produced any MacroNodes".to_string(),
            });
        }

        // Merge compacted PaK-graphs: nodes sharing a (k-1)-mer have their through-path
        // lists concatenated. Because every batch covers the same genome at reduced
        // coverage, the merged graph spells each region several times; contig-level
        // deduplication keeps one copy of each assembled region.
        let merged_graph = merge_nodes(merged_nodes, self.config.k);
        let raw_contigs = generate_contigs(&merged_graph, self.config.min_contig_length);
        let contigs = dedup_contigs(raw_contigs, self.config.k);
        let stats = AssemblyStats::from_contigs(&contigs);
        let unbatched_footprint =
            MemoryFootprint::from_workload(total_read_bases, total_kmers, total_macronode_bytes);

        Ok(BatchAssemblyOutput {
            contigs,
            stats,
            batch_compaction,
            batch_timings,
            batch_traces,
            peak_batch_footprint,
            unbatched_footprint,
            merged_graph,
        })
    }
}

/// Runs one batch A→E; an entirely pruned batch yields `None`.
fn run_batch(
    pipeline: &AssemblyPipeline,
    batch: &[SequencingRead],
) -> Result<Option<AssemblyOutput>, PakmanError> {
    match pipeline.run(batch) {
        Ok(output) => Ok(Some(output)),
        Err(PakmanError::EmptyInput { .. }) => Ok(None),
        Err(other) => Err(other),
    }
}

/// Runs the front half (A–C) of one batch; an entirely pruned batch yields `None`.
fn run_front(
    pipeline: &AssemblyPipeline,
    batch: &[SequencingRead],
) -> Result<Option<crate::stage::FrontArtifact>, PakmanError> {
    match pipeline.front(batch) {
        Ok(front) => Ok(Some(front)),
        Err(PakmanError::EmptyInput { .. }) => Ok(None),
        Err(other) => Err(other),
    }
}

/// The sequential schedule: batch *i* completes A→E before batch *i + 1* starts.
fn run_sequential(
    pipeline: &AssemblyPipeline,
    reads: &[SequencingRead],
    ranges: &[std::ops::Range<usize>],
) -> Result<Vec<Option<AssemblyOutput>>, PakmanError> {
    ranges
        .iter()
        .map(|range| run_batch(pipeline, &reads[range.clone()]))
        .collect()
}

/// The streaming schedule: a two-deep software pipeline over the batches.
///
/// While batch *i* runs stages D–E on the calling thread, a scoped worker runs
/// stages A–C of batch *i + 1*. Results are pushed in batch-index order, so the
/// output is bit-identical to [`run_sequential`] no matter how the two threads
/// interleave.
fn run_overlapped(
    pipeline: &AssemblyPipeline,
    reads: &[SequencingRead],
    ranges: &[std::ops::Range<usize>],
) -> Result<Vec<Option<AssemblyOutput>>, PakmanError> {
    let mut outputs = Vec::with_capacity(ranges.len());
    let mut pending_front = run_front(pipeline, &reads[ranges[0].clone()])?;
    for i in 0..ranges.len() {
        let front = pending_front.take();
        let (output, next_front) = std::thread::scope(|scope| -> Result<_, PakmanError> {
            let worker = ranges.get(i + 1).map(|range| {
                let batch = &reads[range.clone()];
                scope.spawn(move || run_front(pipeline, batch))
            });
            // Back half of batch i on this thread, front of batch i + 1 on the
            // worker — the paper's overlap of compaction with counting.
            let output = front.map(|f| pipeline.finish(f)).transpose()?;
            let next_front = match worker {
                Some(handle) => handle.join().expect("front-stage worker panicked")?,
                None => None,
            };
            Ok((output, next_front))
        })?;
        outputs.push(output);
        pending_front = next_front;
    }
    Ok(outputs)
}

/// Drops contigs whose sequence content is already represented by longer contigs.
///
/// Contigs are accepted longest-first; a candidate is discarded when at least 80 % of
/// its k-mers already appear in accepted contigs. This is the standard containment
/// filter used when per-batch assemblies of the same genome are combined.
fn dedup_contigs(mut contigs: Vec<Contig>, k: usize) -> Vec<Contig> {
    use nmp_pak_genome::Kmer;
    use std::collections::HashSet;

    let k = k.clamp(2, 31);
    contigs.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let mut seen: HashSet<u64> = HashSet::new();
    let mut kept = Vec::with_capacity(contigs.len());
    for contig in contigs {
        if contig.len() < k {
            // Too short to fingerprint; keep only if nothing comparable was kept yet.
            if kept.is_empty() {
                kept.push(contig);
            }
            continue;
        }
        let kmers: Vec<u64> = Kmer::iter_windows(&contig.sequence, k)
            .expect("length checked above")
            .map(|kmer| kmer.packed())
            .collect();
        let known = kmers.iter().filter(|km| seen.contains(km)).count();
        if (known as f64) < 0.8 * kmers.len() as f64 {
            seen.extend(kmers);
            kept.push(contig);
        }
    }
    kept
}

fn merge_nodes(nodes: Vec<crate::macronode::MacroNode>, k: usize) -> PakGraph {
    // Sort-and-scan merge of duplicate (k-1)-mers: the stable sort keeps batch
    // order among duplicates, so the merged node carries its paths in the same
    // order a map-based merge would have produced — without per-entry allocation.
    let mut nodes = nodes;
    nodes.sort_by_key(crate::macronode::MacroNode::k1mer);
    let mut merged: Vec<crate::macronode::MacroNode> = Vec::with_capacity(nodes.len());
    for node in nodes {
        match merged.last_mut() {
            Some(last) if last.k1mer() == node.k1mer() => {
                for path in node.paths() {
                    last.push_path(path.clone());
                }
            }
            _ => merged.push(node),
        }
    }
    PakGraph::from_nodes(merged, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_pak_genome::{ReadSimulator, ReferenceGenome, SequencerConfig};

    fn reads_for(length: usize, coverage: f64, seed: u64) -> Vec<SequencingRead> {
        let genome = ReferenceGenome::builder()
            .length(length)
            .no_repeats()
            .seed(seed)
            .build()
            .unwrap();
        ReadSimulator::new(SequencerConfig {
            coverage,
            substitution_error_rate: 0.0,
            seed: seed + 1,
            ..SequencerConfig::default()
        })
        .simulate(&genome)
        .unwrap()
    }

    fn cfg(k: usize) -> PakmanConfig {
        PakmanConfig {
            k,
            min_kmer_count: 1,
            compaction_node_threshold: 10,
            threads: 2,
            ..PakmanConfig::default()
        }
    }

    #[test]
    fn plan_covers_all_reads_without_overlap() {
        let plan = BatchPlan::by_fraction(1003, 0.1).unwrap();
        assert_eq!(plan.batch_count(), 10);
        let mut covered = 0usize;
        let mut last_end = 0usize;
        for range in plan.ranges() {
            assert_eq!(range.start, last_end);
            covered += range.len();
            last_end = range.end;
        }
        assert_eq!(covered, 1003);
    }

    #[test]
    fn full_fraction_is_one_batch() {
        let plan = BatchPlan::by_fraction(100, 1.0).unwrap();
        assert_eq!(plan.batch_count(), 1);
        let plan = BatchPlan::by_fraction(100, 5.0).unwrap();
        assert_eq!(plan.batch_count(), 1);
    }

    #[test]
    fn fraction_with_zero_sized_tail_still_covers_every_read() {
        // 10 reads at 1/3: the rounded batch count (3) does not divide the read
        // count, so the remainder must be spread without producing an empty batch.
        let plan = BatchPlan::by_fraction(10, 1.0 / 3.0).unwrap();
        assert_eq!(plan.batch_count(), 3);
        let mut covered = 0usize;
        for range in plan.ranges() {
            assert!(!range.is_empty(), "empty batch in {:?}", plan.ranges());
            covered += range.len();
        }
        assert_eq!(covered, 10);
        // 4 batches over 6 reads: base is 1 with remainder 2 — the naive split
        // would leave trailing zero-read batches.
        let plan = BatchPlan::by_fraction(6, 0.25).unwrap();
        assert_eq!(plan.batch_count(), 4);
        assert!(plan.ranges().iter().all(|r| !r.is_empty()));
        assert_eq!(plan.ranges().iter().map(|r| r.len()).sum::<usize>(), 6);
    }

    #[test]
    fn more_batches_than_reads_clamps_to_one_read_per_batch() {
        let plan = BatchPlan::by_fraction(3, 0.1).unwrap();
        assert_eq!(plan.batch_count(), 3);
        assert!(plan.ranges().iter().all(|r| r.len() == 1));
        let mut last_end = 0usize;
        for range in plan.ranges() {
            assert_eq!(range.start, last_end);
            last_end = range.end;
        }
        assert_eq!(last_end, 3);

        // Pathologically small fractions must clamp instead of allocating a
        // billion-range plan (float→usize casts saturate, then the clamp applies).
        let plan = BatchPlan::by_fraction(5, 1e-12).unwrap();
        assert_eq!(plan.batch_count(), 5);
        assert!(plan.ranges().iter().all(|r| r.len() == 1));
    }

    #[test]
    fn invalid_plans_are_rejected() {
        assert!(BatchPlan::by_fraction(0, 0.1).is_err());
        assert!(BatchPlan::by_fraction(10, 0.0).is_err());
        assert!(BatchPlan::by_fraction(10, -0.5).is_err());
        assert!(BatchPlan::by_fraction(10, f64::NAN).is_err());
    }

    #[test]
    fn batched_assembly_produces_contigs() {
        let reads = reads_for(6_000, 20.0, 21);
        let output = BatchAssembler::new(cfg(17), 0.25).assemble(&reads).unwrap();
        assert!(!output.contigs.is_empty());
        assert!(output.stats.total_length > 3_000);
        assert_eq!(output.batch_compaction.len(), 4);
    }

    #[test]
    fn batching_reduces_peak_footprint() {
        let reads = reads_for(6_000, 20.0, 33);
        let output = BatchAssembler::new(cfg(17), 0.2).assemble(&reads).unwrap();
        assert!(
            output.footprint_reduction() > 2.0,
            "reduction = {}",
            output.footprint_reduction()
        );
    }

    #[test]
    fn smaller_batches_do_not_improve_n50() {
        // Table 1's trend: N50 is non-increasing as the batch size shrinks.
        let reads = reads_for(8_000, 25.0, 55);
        let full = BatchAssembler::new(cfg(17), 1.0).assemble(&reads).unwrap();
        let tenth = BatchAssembler::new(cfg(17), 0.1).assemble(&reads).unwrap();
        assert!(
            tenth.stats.n50 <= full.stats.n50,
            "tenth = {}, full = {}",
            tenth.stats.n50,
            full.stats.n50
        );
    }

    #[test]
    fn single_batch_matches_unbatched_pipeline() {
        // A single batch runs the same pipeline; the only difference is the final
        // contig-containment dedup, so the assembled content must agree closely.
        let reads = reads_for(4_000, 15.0, 77);
        let unbatched = crate::pipeline::PakmanAssembler::new(cfg(17))
            .assemble(&reads)
            .unwrap();
        let single_batch = BatchAssembler::new(cfg(17), 1.0).assemble(&reads).unwrap();
        let ratio = single_batch.stats.total_length as f64 / unbatched.stats.total_length as f64;
        // The containment dedup drops reverse-strand / repeat duplicates, so the
        // single-batch total is bounded by the unbatched total but stays the same
        // order of magnitude, and the longest contig is identical.
        assert!((0.4..=1.0).contains(&ratio), "ratio = {ratio}");
        assert!(single_batch.stats.largest_contig == unbatched.stats.largest_contig);
    }

    #[test]
    fn overlapped_schedule_matches_sequential() {
        let reads = reads_for(6_000, 20.0, 91);
        let mut config = cfg(17);
        config.record_trace = true;
        let sequential = BatchAssembler::with_schedule(config, 0.2, BatchSchedule::Sequential)
            .assemble(&reads)
            .unwrap();
        let overlapped = BatchAssembler::with_schedule(config, 0.2, BatchSchedule::Overlapped)
            .assemble(&reads)
            .unwrap();
        assert_eq!(overlapped.contigs, sequential.contigs);
        assert_eq!(overlapped.stats, sequential.stats);
        assert_eq!(overlapped.batch_compaction, sequential.batch_compaction);
        assert_eq!(overlapped.batch_traces, sequential.batch_traces);
        assert!(!overlapped.batch_traces.is_empty());
    }

    #[test]
    fn default_schedule_is_overlapped() {
        let assembler = BatchAssembler::new(cfg(17), 0.5);
        assert_eq!(assembler.schedule(), BatchSchedule::Overlapped);
    }
}
