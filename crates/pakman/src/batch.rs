//! Customized batch processing (§4.4 of the paper) with overlapped batch
//! streaming (§4.5, Fig. 2) over a chunked [`ReadSource`].
//!
//! The input read stream is partitioned into batches; each batch's compacted
//! PaK-graph is kept (they are small — tens of MB in the paper) and all of them
//! are merged before the final graph walk. This trades a lower peak memory
//! footprint against contig quality: very small batches fragment the graph
//! (k-mers split across batches fall below the pruning threshold, and the
//! per-batch compaction takes divergent routes), which is the N50-vs-batch-size
//! trade-off of Table 1.
//!
//! Ingestion is streaming: [`BatchAssembler::assemble_source`] pulls one
//! [`ReadChunk`] per batch off any [`ReadSource`] (an in-memory slice, a
//! FASTA/FASTQ file, a synthetic generator), so the full read set never has to
//! be materialized. The slice-based [`BatchAssembler::assemble`] is a thin
//! wrapper that maps a [`BatchPlan`] onto a zero-copy
//! [`nmp_pak_genome::InMemorySource`].
//!
//! Batches flow through the staged pipeline ([`crate::stage::AssemblyPipeline`])
//! under a [`BatchSchedule`]:
//!
//! * [`BatchSchedule::Sequential`] runs each batch A→E before starting the next —
//!   the original PaKman process flow.
//! * [`BatchSchedule::Overlapped`] (the default) executes the paper's pipelined
//!   flow for real: while batch *i* runs Iterative Compaction and the walk
//!   (stages D–E) on the calling thread, the counting and construction front
//!   (stages A–C) of batch *i + 1* runs on its own scoped thread.
//! * [`BatchSchedule::Pipelined`] generalizes the overlap to a *k*-deep
//!   in-flight window: the fronts of batches *i + 1 … i + depth* run on worker
//!   threads while batch *i* finishes, with the admitted read bytes bounded by
//!   `max_inflight_bytes`.
//!
//! All schedules are **bit-identical**: every batch is a deterministic function
//! of its reads alone, and per-batch outputs are merged in batch-index order
//! regardless of completion order (the determinism contract of DESIGN.md).

use crate::compaction::CompactionStats;
use crate::config::PakmanConfig;
use crate::contig::{AssemblyStats, Contig};
use crate::control::RunControl;
use crate::error::PakmanError;
use crate::graph::PakGraph;
use crate::memory::{MemoryBudget, MemoryFootprint};
use crate::pipeline::{AssemblyOutput, PhaseTimings};
use crate::shard::ShardingTelemetry;
use crate::spill::SpillTelemetry;
use crate::stage::{AssemblyPipeline, FrontArtifact};
use crate::trace::CompactionTrace;
use crate::walk::generate_contigs;
use nmp_pak_genome::{InMemorySource, ReadChunk, ReadSource, SequencingRead};
use std::collections::VecDeque;

/// A plan dividing a read set into batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    /// Read-index ranges, one per batch.
    ranges: Vec<std::ops::Range<usize>>,
}

impl BatchPlan {
    /// Splits `read_count` reads into batches of `batch_fraction` of the input each
    /// (e.g. `0.1` → 10 batches). A fraction of 1.0 (or ≥ 1.0) yields a single batch.
    ///
    /// Every produced range is non-empty and the ranges cover `0..read_count`
    /// exactly once: a fraction small enough that the rounded batch count exceeds
    /// the read count is clamped to one read per batch.
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::InvalidConfig`] if the fraction is not positive or the
    /// read count is zero.
    pub fn by_fraction(read_count: usize, batch_fraction: f64) -> Result<BatchPlan, PakmanError> {
        if read_count == 0 {
            return Err(PakmanError::InvalidConfig {
                message: "cannot plan batches over zero reads".to_string(),
            });
        }
        if batch_fraction.is_nan() || batch_fraction <= 0.0 {
            return Err(PakmanError::InvalidConfig {
                message: format!("batch fraction {batch_fraction} must be positive"),
            });
        }
        let fraction = batch_fraction.min(1.0);
        // Clamp to the read count: `1.0 / fraction` can round to more batches than
        // there are reads (float→usize casts saturate, so even 1e-300 is safe),
        // and a plan must never contain an empty batch.
        let batch_count = ((1.0 / fraction).round().max(1.0) as usize).min(read_count);
        let base = read_count / batch_count;
        let remainder = read_count % batch_count;
        let mut ranges = Vec::with_capacity(batch_count);
        let mut start = 0usize;
        for i in 0..batch_count {
            let len = base + usize::from(i < remainder);
            debug_assert!(len > 0, "clamped plans have no empty batches");
            ranges.push(start..start + len);
            start += len;
        }
        debug_assert_eq!(start, read_count, "plan must cover every read exactly once");
        Ok(BatchPlan { ranges })
    }

    /// Splits `reads` into batches of roughly `target_bytes` of resident read
    /// data each, using the same per-read accounting as
    /// [`ReadChunk::approx_read_bytes`] (packed sequence + qualities + id +
    /// fixed overhead). This plans batch boundaries by *memory*, not read count,
    /// so N50-vs-batch-size studies stay comparable across read-length
    /// distributions (see ROADMAP).
    ///
    /// A batch is closed as soon as admitting the next read would exceed the
    /// budget, but every batch holds at least one read: a single read larger
    /// than the whole budget becomes its own batch, and a budget smaller than
    /// any read degrades to one read per batch. The ranges cover `0..reads.len()`
    /// exactly once.
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::InvalidConfig`] if `reads` is empty or the budget
    /// is zero.
    pub fn by_target_bytes(
        reads: &[SequencingRead],
        target_bytes: u64,
    ) -> Result<BatchPlan, PakmanError> {
        if reads.is_empty() {
            return Err(PakmanError::InvalidConfig {
                message: "cannot plan batches over zero reads".to_string(),
            });
        }
        if target_bytes == 0 {
            return Err(PakmanError::InvalidConfig {
                message: "batch byte budget must be positive".to_string(),
            });
        }
        let mut ranges = Vec::new();
        let mut start = 0usize;
        let mut resident = 0u64;
        for (i, read) in reads.iter().enumerate() {
            let bytes = ReadChunk::Borrowed(std::slice::from_ref(read)).approx_read_bytes();
            if i > start && resident + bytes > target_bytes {
                ranges.push(start..i);
                start = i;
                resident = 0;
            }
            resident += bytes;
        }
        ranges.push(start..reads.len());
        debug_assert!(ranges.iter().all(|r| !r.is_empty()));
        Ok(BatchPlan { ranges })
    }

    /// Number of batches.
    pub fn batch_count(&self) -> usize {
        self.ranges.len()
    }

    /// The read-index ranges, one per batch.
    pub fn ranges(&self) -> &[std::ops::Range<usize>] {
        &self.ranges
    }
}

/// How the batches are driven through the staged pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BatchSchedule {
    /// Each batch runs A→E to completion before the next batch starts (the
    /// original sequential-stage process flow).
    Sequential,
    /// The paper's pipelined flow: stages A–C of batch *i + 1* run on a scoped
    /// worker thread while batch *i* runs stages D–E on the calling thread.
    /// Equivalent to `Pipelined { depth: 1, max_inflight_bytes: None }`.
    /// Output is bit-identical to [`BatchSchedule::Sequential`].
    #[default]
    Overlapped,
    /// A *k*-deep software pipeline: while batch *i* runs stages D–E on the
    /// calling thread, the fronts (A–C) of up to `depth` later batches run
    /// concurrently on scoped worker threads. Output is bit-identical to
    /// [`BatchSchedule::Sequential`] at any depth, thread count, or budget.
    Pipelined {
        /// Maximum number of batch fronts in flight while one batch finishes
        /// (clamped to at least 1; `1` reproduces [`BatchSchedule::Overlapped`]).
        depth: usize,
        /// Budget on the approximate bytes of read data admitted to the window
        /// (see [`ReadChunk::approx_read_bytes`]). Admission of further batches
        /// stalls while the in-flight reads exceed the budget; a single batch
        /// larger than the budget is still admitted alone so the schedule always
        /// makes progress. `None` leaves the window unbounded.
        max_inflight_bytes: Option<u64>,
    },
}

/// Output of a batched assembly run.
#[derive(Debug, Clone)]
pub struct BatchAssemblyOutput {
    /// Contigs generated from the merged compacted graph.
    pub contigs: Vec<Contig>,
    /// Assembly-quality statistics.
    pub stats: AssemblyStats,
    /// Per-batch compaction statistics, in batch-index order.
    pub batch_compaction: Vec<CompactionStats>,
    /// Per-batch phase timings, in batch-index order.
    pub batch_timings: Vec<PhaseTimings>,
    /// Per-batch compaction traces, in batch-index order (empty unless
    /// [`PakmanConfig::record_trace`] is set).
    pub batch_traces: Vec<CompactionTrace>,
    /// Per-batch sharded-execution telemetry, in batch-index order (empty
    /// unless [`crate::config::ShardConfig`] engages sharded execution).
    pub batch_sharding: Vec<ShardingTelemetry>,
    /// Per-batch external-memory counting telemetry, in batch-index order
    /// (empty unless [`crate::config::SpillConfig`] bounds the counter).
    pub batch_spill: Vec<SpillTelemetry>,
    /// Peak footprint of the largest single batch (the batched peak, §4.4).
    pub peak_batch_footprint: MemoryFootprint,
    /// Footprint the same workload would need without batching.
    pub unbatched_footprint: MemoryFootprint,
    /// Peak approximate bytes of read data concurrently admitted to the batch
    /// scheduler ([`ReadChunk::approx_read_bytes`] accounting). For a streamed
    /// source this is the ingestion memory high-water mark — bounded by
    /// [`BatchSchedule::Pipelined::max_inflight_bytes`] whenever every single
    /// batch fits the budget.
    pub peak_inflight_read_bytes: u64,
    /// The merged compacted graph.
    pub merged_graph: PakGraph,
}

impl BatchAssemblyOutput {
    /// Memory-footprint reduction achieved by batching (unbatched / batched peak).
    pub fn footprint_reduction(&self) -> f64 {
        let batched = self.peak_batch_footprint.peak_bytes();
        if batched == 0 {
            return 0.0;
        }
        self.unbatched_footprint.peak_bytes() as f64 / batched as f64
    }
}

/// Everything the scheduler records about one batch, in batch-index order.
#[derive(Debug)]
struct BatchOutcome {
    /// Total read bases in the batch (the census the footprint model needs).
    read_bases: u64,
    /// The batch's assembly output; `None` if the batch was entirely pruned.
    output: Option<AssemblyOutput>,
}

/// Assembles a read stream batch-by-batch and merges the compacted graphs.
#[derive(Debug, Clone)]
pub struct BatchAssembler {
    config: PakmanConfig,
    batch_fraction: f64,
    schedule: BatchSchedule,
}

impl BatchAssembler {
    /// Creates a batch assembler processing `batch_fraction` of the reads at a
    /// time, with the default [`BatchSchedule::Overlapped`] streaming schedule.
    pub fn new(config: PakmanConfig, batch_fraction: f64) -> Self {
        BatchAssembler::with_schedule(config, batch_fraction, BatchSchedule::default())
    }

    /// Creates a batch assembler with an explicit schedule.
    pub fn with_schedule(
        config: PakmanConfig,
        batch_fraction: f64,
        schedule: BatchSchedule,
    ) -> Self {
        BatchAssembler {
            config,
            batch_fraction,
            schedule,
        }
    }

    /// The configured batch fraction (used only by the slice-based
    /// [`BatchAssembler::assemble`]; a streamed source defines its own batch
    /// boundaries).
    pub fn batch_fraction(&self) -> f64 {
        self.batch_fraction
    }

    /// The configured schedule.
    pub fn schedule(&self) -> BatchSchedule {
        self.schedule
    }

    /// Runs the batched assembly over an in-memory read set: plans batches with
    /// [`BatchPlan::by_fraction`] and streams them zero-copy through
    /// [`BatchAssembler::assemble_source`].
    ///
    /// # Errors
    ///
    /// Propagates configuration and empty-input errors from the per-batch pipeline.
    pub fn assemble(&self, reads: &[SequencingRead]) -> Result<BatchAssemblyOutput, PakmanError> {
        let plan = BatchPlan::by_fraction(reads.len(), self.batch_fraction)?;
        self.assemble_with_plan(reads, &plan)
    }

    /// Runs the batched assembly over an in-memory read set with an explicit
    /// [`BatchPlan`] (e.g. [`BatchPlan::by_target_bytes`]), streamed zero-copy
    /// through [`BatchAssembler::assemble_source`].
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::InvalidConfig`] if the plan's ranges do not fit
    /// `reads`, and propagates per-batch pipeline errors.
    pub fn assemble_with_plan(
        &self,
        reads: &[SequencingRead],
        plan: &BatchPlan,
    ) -> Result<BatchAssemblyOutput, PakmanError> {
        let source = InMemorySource::with_ranges(reads, plan.ranges().to_vec())?;
        self.assemble_source(source)
    }

    /// Runs the batched assembly over a streaming source, one batch per
    /// [`ReadChunk`]. The full read set is never materialized: under the
    /// pipelined schedules at most the in-flight window of chunks (plus one
    /// staged chunk when the byte budget blocks admission) is resident.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors, source I/O/parse errors, and
    /// [`PakmanError::EmptyInput`] when no batch yields any MacroNodes.
    pub fn assemble_source<'r>(
        &self,
        source: impl ReadSource<'r>,
    ) -> Result<BatchAssemblyOutput, PakmanError> {
        self.assemble_source_controlled(source, &RunControl::default())
    }

    /// [`BatchAssembler::assemble_source`] under an explicit [`RunControl`]:
    /// cancellation is polled at every batch boundary, the pipelined window's
    /// byte ledger is chained into the control's shared ledger (so a server can
    /// account all jobs against one global budget), and progress observers see
    /// per-batch stage callbacks. Passing [`RunControl::default`] is exactly
    /// [`BatchAssembler::assemble_source`].
    ///
    /// # Errors
    ///
    /// As [`BatchAssembler::assemble_source`], plus [`PakmanError::Cancelled`]
    /// when the control's token latches.
    pub fn assemble_source_controlled<'r>(
        &self,
        source: impl ReadSource<'r>,
        control: &RunControl<'_>,
    ) -> Result<BatchAssemblyOutput, PakmanError> {
        let pipeline = AssemblyPipeline::new(self.config)?;
        let (outcomes, peak_inflight) = match self.schedule {
            BatchSchedule::Sequential => run_sequential(&pipeline, source, control)?,
            BatchSchedule::Overlapped => run_pipelined(&pipeline, source, 1, None, control)?,
            BatchSchedule::Pipelined {
                depth,
                max_inflight_bytes,
            } => run_pipelined(&pipeline, source, depth, max_inflight_bytes, control)?,
        };
        self.merge(outcomes, peak_inflight)
    }

    /// Merges per-batch outcomes (in batch-index order) into the final result.
    fn merge(
        &self,
        outcomes: Vec<BatchOutcome>,
        peak_inflight_read_bytes: u64,
    ) -> Result<BatchAssemblyOutput, PakmanError> {
        let mut merged_nodes = Vec::new();
        let mut batch_compaction = Vec::with_capacity(outcomes.len());
        let mut batch_timings = Vec::with_capacity(outcomes.len());
        let mut batch_traces = Vec::new();
        let mut batch_sharding = Vec::new();
        let mut batch_spill = Vec::new();
        let mut peak_batch_footprint = MemoryFootprint::default();
        let mut total_read_bases = 0u64;
        let mut total_kmers = 0u64;
        let mut total_macronode_bytes = 0u64;

        for outcome in outcomes {
            // A batch that is entirely pruned away contributes nothing; this can
            // happen for very small batches, which is precisely the quality
            // degradation the batching trade-off studies.
            let Some(output) = outcome.output else {
                continue;
            };
            total_read_bases += outcome.read_bases;
            total_kmers += output.kmer_stats.total_kmers;
            total_macronode_bytes += output.footprint.macronode_bytes;
            if output.footprint.peak_bytes() > peak_batch_footprint.peak_bytes() {
                peak_batch_footprint = output.footprint;
            }
            batch_compaction.push(output.compaction);
            batch_timings.push(output.timings);
            if let Some(trace) = output.trace {
                batch_traces.push(trace);
            }
            if let Some(sharding) = output.sharding {
                batch_sharding.push(sharding);
            }
            if let Some(spill) = output.spill {
                batch_spill.push(spill);
            }
            merged_nodes.extend(output.graph.into_nodes());
        }

        if merged_nodes.is_empty() {
            return Err(PakmanError::EmptyInput {
                message: "no batch produced any MacroNodes".to_string(),
            });
        }

        // Merge compacted PaK-graphs: nodes sharing a (k-1)-mer have their through-path
        // lists concatenated. Because every batch covers the same genome at reduced
        // coverage, the merged graph spells each region several times; contig-level
        // deduplication keeps one copy of each assembled region.
        let merged_graph = merge_nodes(merged_nodes, self.config.k);
        let raw_contigs = generate_contigs(&merged_graph, self.config.min_contig_length);
        let contigs = dedup_contigs(raw_contigs, self.config.k);
        let stats = AssemblyStats::from_contigs(&contigs);
        let unbatched_footprint =
            MemoryFootprint::from_workload(total_read_bases, total_kmers, total_macronode_bytes);

        Ok(BatchAssemblyOutput {
            contigs,
            stats,
            batch_compaction,
            batch_timings,
            batch_traces,
            batch_sharding,
            batch_spill,
            peak_batch_footprint,
            unbatched_footprint,
            peak_inflight_read_bytes,
            merged_graph,
        })
    }
}

/// Runs one batch A→E; an entirely pruned batch yields `None`.
fn run_batch(
    pipeline: &AssemblyPipeline,
    batch: &[SequencingRead],
    control: &RunControl<'_>,
) -> Result<Option<AssemblyOutput>, PakmanError> {
    match pipeline.run_controlled(batch, control) {
        Ok(output) => Ok(Some(output)),
        Err(PakmanError::EmptyInput { .. }) => Ok(None),
        Err(other) => Err(other),
    }
}

/// Runs the front half (A–C) of one batch, consuming its chunk; an entirely
/// pruned batch yields `None`.
fn run_front_chunk(
    pipeline: &AssemblyPipeline,
    chunk: ReadChunk<'_>,
    control: &RunControl<'_>,
) -> Result<Option<FrontArtifact>, PakmanError> {
    match pipeline.front_controlled(chunk.reads(), control) {
        Ok(front) => Ok(Some(front)),
        Err(PakmanError::EmptyInput { .. }) => Ok(None),
        Err(other) => Err(other),
    }
}

/// The sequential schedule: batch *i* completes A→E before batch *i + 1* is
/// even pulled from the source, so exactly one chunk is resident at a time.
fn run_sequential<'r, S: ReadSource<'r>>(
    pipeline: &AssemblyPipeline,
    mut source: S,
    control: &RunControl<'_>,
) -> Result<(Vec<BatchOutcome>, u64), PakmanError> {
    let mut outcomes = Vec::new();
    let mut peak_bytes = 0u64;
    while let Some(chunk) = source.next_chunk()? {
        control.check("sequential batch loop")?;
        if chunk.is_empty() {
            continue;
        }
        peak_bytes = peak_bytes.max(chunk.approx_read_bytes());
        let output = run_batch(pipeline, chunk.reads(), control)?;
        outcomes.push(BatchOutcome {
            read_bases: chunk.total_bases(),
            output,
        });
    }
    Ok((outcomes, peak_bytes))
}

/// The streaming schedule: a `depth + 1`-deep software pipeline over the batches.
///
/// While batch *i* runs stages D–E on the calling thread, the fronts (A–C) of
/// batches *i + 1 … i + depth* run on scoped worker threads. Chunks are pulled
/// from the source only when admitted to the window, and admission stalls while
/// the approximate in-flight read bytes exceed `max_inflight_bytes` (one pulled
/// chunk may be staged while blocked; a chunk larger than the whole budget is
/// admitted alone so the schedule cannot deadlock).
///
/// Fronts are joined and finished strictly in batch-index order, so the output
/// is bit-identical to [`run_sequential`] no matter how the threads interleave.
fn run_pipelined<'r, S: ReadSource<'r>>(
    pipeline: &AssemblyPipeline,
    mut source: S,
    depth: usize,
    max_inflight_bytes: Option<u64>,
    control: &RunControl<'_>,
) -> Result<(Vec<BatchOutcome>, u64), PakmanError> {
    let depth = depth.max(1);
    std::thread::scope(|scope| {
        let mut outcomes = Vec::new();
        let mut window: Window<'_, 'r> = Window {
            inflight: VecDeque::new(),
            staged: None,
            // Chained into the shared ledger (when one is set) so a multi-job
            // server sees every window's resident read bytes in one place.
            budget: control.adopt(match max_inflight_bytes {
                Some(bytes) => MemoryBudget::bounded(bytes),
                None => MemoryBudget::unbounded(),
            }),
            exhausted: false,
            depth,
        };

        // Errors break out of the loop (instead of `?`-returning) so the
        // ledger-settling cleanup below runs on every exit path.
        let mut result: Result<(), PakmanError> = Ok(());
        loop {
            if let Err(err) = control.check("pipelined batch loop") {
                result = Err(err);
                break;
            }
            if let Err(err) = window.admit(scope, pipeline, &mut source, control) {
                result = Err(err);
                break;
            }
            let Some(batch) = window.inflight.pop_front() else {
                break;
            };
            let front = match batch.handle.join().expect("front-stage worker panicked") {
                Ok(front) => {
                    window.budget.release(batch.bytes);
                    front
                }
                Err(err) => {
                    window.budget.release(batch.bytes);
                    result = Err(err);
                    break;
                }
            };
            // Admit the replacement *before* finishing, so the next fronts run
            // while this batch compacts — the paper's overlap of compaction
            // with counting, now `depth` batches deep.
            if let Err(err) = window.admit(scope, pipeline, &mut source, control) {
                result = Err(err);
                break;
            }
            match front
                .map(|f| pipeline.finish_controlled(f, control))
                .transpose()
            {
                Ok(output) => outcomes.push(BatchOutcome {
                    read_bases: batch.read_bases,
                    output,
                }),
                Err(err) => {
                    result = Err(err);
                    break;
                }
            }
        }
        // On error (including cancellation) the window may still hold staged or
        // in-flight charges; settle the ledger before the scope joins workers so
        // a chained global budget never leaks a dead job's bytes.
        if let Some(staged) = window.staged.take() {
            window.budget.release(staged.approx_read_bytes());
        }
        for batch in window.inflight.drain(..) {
            let _ = batch.handle.join().expect("front-stage worker panicked");
            window.budget.release(batch.bytes);
        }
        result?;
        Ok((outcomes, window.budget.peak_bytes()))
    })
}

/// One spawned batch front: the worker's handle plus the admission accounting.
struct Inflight<'scope> {
    read_bases: u64,
    bytes: u64,
    handle: std::thread::ScopedJoinHandle<'scope, Result<Option<FrontArtifact>, PakmanError>>,
}

/// The pipelined scheduler's in-flight window state. Resident read bytes are
/// accounted through the same [`MemoryBudget`] machinery as the external-memory
/// counter's spill budget (the shared-accounting contract in DESIGN.md).
struct Window<'scope, 'r> {
    inflight: VecDeque<Inflight<'scope>>,
    /// A chunk pulled from the source but blocked by the byte budget. Its bytes
    /// already count as in-flight: it is resident.
    staged: Option<ReadChunk<'r>>,
    /// Ledger over the admitted read bytes; bounded by `max_inflight_bytes`.
    budget: MemoryBudget,
    exhausted: bool,
    depth: usize,
}

impl<'scope, 'r: 'scope> Window<'scope, 'r> {
    /// Admits batches until the window holds `depth` fronts, the byte budget
    /// blocks, or the source runs dry.
    fn admit<'env, S: ReadSource<'r>>(
        &mut self,
        scope: &'scope std::thread::Scope<'scope, 'env>,
        pipeline: &'scope AssemblyPipeline,
        source: &mut S,
        control: &'scope RunControl<'scope>,
    ) -> Result<(), PakmanError> {
        while self.inflight.len() < self.depth {
            let chunk = match self.staged.take() {
                Some(chunk) => chunk,
                None => {
                    if self.exhausted {
                        break;
                    }
                    match source.next_chunk()? {
                        Some(chunk) if chunk.is_empty() => continue,
                        Some(chunk) => {
                            self.budget.charge(chunk.approx_read_bytes());
                            chunk
                        }
                        None => {
                            self.exhausted = true;
                            break;
                        }
                    }
                }
            };
            if self.budget.is_over() && !self.inflight.is_empty() {
                self.staged = Some(chunk);
                break;
            }
            let bytes = chunk.approx_read_bytes();
            let read_bases = chunk.total_bases();
            let handle = scope.spawn(move || run_front_chunk(pipeline, chunk, control));
            self.inflight.push_back(Inflight {
                read_bases,
                bytes,
                handle,
            });
        }
        Ok(())
    }
}

/// Drops contigs whose sequence content is already represented by longer contigs.
///
/// Contigs are accepted longest-first; a candidate is discarded when at least 80 % of
/// its k-mers already appear in accepted contigs. This is the standard containment
/// filter used when per-batch assemblies of the same genome are combined.
fn dedup_contigs(mut contigs: Vec<Contig>, k: usize) -> Vec<Contig> {
    use nmp_pak_genome::Kmer;
    use std::collections::HashSet;

    let k = k.clamp(2, 31);
    contigs.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let mut seen: HashSet<u64> = HashSet::new();
    let mut kept = Vec::with_capacity(contigs.len());
    for contig in contigs {
        if contig.len() < k {
            // Too short to fingerprint; keep only if nothing comparable was kept yet.
            if kept.is_empty() {
                kept.push(contig);
            }
            continue;
        }
        let kmers: Vec<u64> = Kmer::iter_windows(&contig.sequence, k)
            .expect("length checked above")
            .map(|kmer| kmer.packed())
            .collect();
        let known = kmers.iter().filter(|km| seen.contains(km)).count();
        if (known as f64) < 0.8 * kmers.len() as f64 {
            seen.extend(kmers);
            kept.push(contig);
        }
    }
    kept
}

fn merge_nodes(nodes: Vec<crate::macronode::MacroNode>, k: usize) -> PakGraph {
    // Sort-and-scan merge of duplicate (k-1)-mers: the stable sort keeps batch
    // order among duplicates, so the merged node carries its paths in the same
    // order a map-based merge would have produced — without per-entry allocation.
    let mut nodes = nodes;
    nodes.sort_by_key(crate::macronode::MacroNode::k1mer);
    let mut merged: Vec<crate::macronode::MacroNode> = Vec::with_capacity(nodes.len());
    for node in nodes {
        match merged.last_mut() {
            Some(last) if last.k1mer() == node.k1mer() => {
                for path in node.paths() {
                    last.push_path(path.clone());
                }
            }
            _ => merged.push(node),
        }
    }
    PakGraph::from_nodes(merged, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::reads_for;

    fn cfg(k: usize) -> PakmanConfig {
        PakmanConfig {
            k,
            min_kmer_count: 1,
            compaction_node_threshold: 10,
            threads: 2,
            ..PakmanConfig::default()
        }
    }

    #[test]
    fn plan_covers_all_reads_without_overlap() {
        let plan = BatchPlan::by_fraction(1003, 0.1).unwrap();
        assert_eq!(plan.batch_count(), 10);
        let mut covered = 0usize;
        let mut last_end = 0usize;
        for range in plan.ranges() {
            assert_eq!(range.start, last_end);
            covered += range.len();
            last_end = range.end;
        }
        assert_eq!(covered, 1003);
    }

    #[test]
    fn full_fraction_is_one_batch() {
        let plan = BatchPlan::by_fraction(100, 1.0).unwrap();
        assert_eq!(plan.batch_count(), 1);
        let plan = BatchPlan::by_fraction(100, 5.0).unwrap();
        assert_eq!(plan.batch_count(), 1);
    }

    #[test]
    fn fraction_with_zero_sized_tail_still_covers_every_read() {
        // 10 reads at 1/3: the rounded batch count (3) does not divide the read
        // count, so the remainder must be spread without producing an empty batch.
        let plan = BatchPlan::by_fraction(10, 1.0 / 3.0).unwrap();
        assert_eq!(plan.batch_count(), 3);
        let mut covered = 0usize;
        for range in plan.ranges() {
            assert!(!range.is_empty(), "empty batch in {:?}", plan.ranges());
            covered += range.len();
        }
        assert_eq!(covered, 10);
        // 4 batches over 6 reads: base is 1 with remainder 2 — the naive split
        // would leave trailing zero-read batches.
        let plan = BatchPlan::by_fraction(6, 0.25).unwrap();
        assert_eq!(plan.batch_count(), 4);
        assert!(plan.ranges().iter().all(|r| !r.is_empty()));
        assert_eq!(plan.ranges().iter().map(|r| r.len()).sum::<usize>(), 6);
    }

    #[test]
    fn more_batches_than_reads_clamps_to_one_read_per_batch() {
        let plan = BatchPlan::by_fraction(3, 0.1).unwrap();
        assert_eq!(plan.batch_count(), 3);
        assert!(plan.ranges().iter().all(|r| r.len() == 1));
        let mut last_end = 0usize;
        for range in plan.ranges() {
            assert_eq!(range.start, last_end);
            last_end = range.end;
        }
        assert_eq!(last_end, 3);

        // Pathologically small fractions must clamp instead of allocating a
        // billion-range plan (float→usize casts saturate, then the clamp applies).
        let plan = BatchPlan::by_fraction(5, 1e-12).unwrap();
        assert_eq!(plan.batch_count(), 5);
        assert!(plan.ranges().iter().all(|r| r.len() == 1));
    }

    #[test]
    fn invalid_plans_are_rejected() {
        assert!(BatchPlan::by_fraction(0, 0.1).is_err());
        assert!(BatchPlan::by_fraction(10, 0.0).is_err());
        assert!(BatchPlan::by_fraction(10, -0.5).is_err());
        assert!(BatchPlan::by_fraction(10, f64::NAN).is_err());
    }

    #[test]
    fn byte_budget_plan_packs_reads_up_to_the_target() {
        let reads = reads_for(2_000, 10.0, 31);
        let per_read = ReadChunk::Borrowed(&reads[..1]).approx_read_bytes();
        // Budget for ~10 reads (same-length synthetic reads): every non-final
        // batch packs as many reads as fit without exceeding the target.
        let target = per_read * 10;
        let plan = BatchPlan::by_target_bytes(&reads, target).unwrap();
        assert!(plan.batch_count() >= 2);
        let mut covered = 0usize;
        let mut last_end = 0usize;
        for range in plan.ranges() {
            assert_eq!(range.start, last_end, "ranges must tile the read set");
            assert!(!range.is_empty());
            let bytes = ReadChunk::Borrowed(&reads[range.clone()]).approx_read_bytes();
            assert!(bytes <= target, "batch {range:?} exceeds the byte budget");
            covered += range.len();
            last_end = range.end;
        }
        assert_eq!(covered, reads.len());
        // All but the last batch are full: one more read would burst the budget.
        for range in &plan.ranges()[..plan.batch_count() - 1] {
            let with_next =
                ReadChunk::Borrowed(&reads[range.start..range.end + 1]).approx_read_bytes();
            assert!(with_next > target);
        }
    }

    #[test]
    fn byte_budget_smaller_than_any_read_degrades_to_one_read_per_batch() {
        let reads = reads_for(200, 5.0, 17);
        let plan = BatchPlan::by_target_bytes(&reads, 1).unwrap();
        assert_eq!(plan.batch_count(), reads.len());
        assert!(plan.ranges().iter().all(|r| r.len() == 1));
    }

    #[test]
    fn byte_budget_larger_than_everything_is_one_batch() {
        let reads = reads_for(200, 5.0, 17);
        let whole = ReadChunk::Borrowed(&reads[..]).approx_read_bytes();
        let plan = BatchPlan::by_target_bytes(&reads, whole).unwrap();
        assert_eq!(plan.batch_count(), 1);
        assert_eq!(plan.ranges()[0], 0..reads.len());
    }

    #[test]
    fn one_huge_read_gets_its_own_batch() {
        use nmp_pak_genome::DnaString;
        let mut reads = reads_for(1_000, 3.0, 9);
        let huge: DnaString = "ACGT".repeat(5_000).parse().unwrap();
        reads.insert(25, SequencingRead::new("huge".to_string(), huge));
        let per_small = ReadChunk::Borrowed(&reads[..1]).approx_read_bytes();
        let plan = BatchPlan::by_target_bytes(&reads, per_small * 4).unwrap();
        // The huge read bursts any batch: it must sit alone in its own range.
        let huge_range = plan
            .ranges()
            .iter()
            .find(|r| r.contains(&25))
            .expect("the huge read is covered");
        assert_eq!(huge_range.clone(), 25..26);
        assert_eq!(
            plan.ranges().iter().map(|r| r.len()).sum::<usize>(),
            reads.len()
        );
    }

    #[test]
    fn invalid_byte_budget_plans_are_rejected() {
        assert!(BatchPlan::by_target_bytes(&[], 1024).is_err());
        let reads = reads_for(1_000, 3.0, 9);
        assert!(BatchPlan::by_target_bytes(&reads, 0).is_err());
    }

    #[test]
    fn byte_budget_plan_assembles_identically_to_the_same_count_plan() {
        // A byte plan over uniformly sized reads lands on equal-count
        // boundaries, so the assembly must agree bit for bit with the
        // fraction-based path. Ids are padded to a fixed width so every read
        // charges identical bytes (ids count toward the resident-byte census).
        let reads: Vec<SequencingRead> = reads_for(6_000, 20.0, 63)
            .into_iter()
            .enumerate()
            .map(|(i, r)| SequencingRead::new(format!("r{i:06}"), r.sequence().clone()))
            .collect();
        assert_eq!(reads.len() % 4, 0);
        let quarter_bytes = ReadChunk::Borrowed(&reads[..reads.len() / 4]).approx_read_bytes();
        let byte_plan = BatchPlan::by_target_bytes(&reads, quarter_bytes).unwrap();
        let count_plan = BatchPlan::by_fraction(reads.len(), 0.25).unwrap();
        assert_eq!(byte_plan, count_plan);
        let assembler = BatchAssembler::new(cfg(17), 0.25);
        let planned = assembler.assemble_with_plan(&reads, &byte_plan).unwrap();
        let fraction = assembler.assemble(&reads).unwrap();
        assert_eq!(planned.contigs, fraction.contigs);
        assert_eq!(planned.batch_compaction, fraction.batch_compaction);
    }

    #[test]
    fn batched_assembly_produces_contigs() {
        let reads = reads_for(6_000, 20.0, 21);
        let output = BatchAssembler::new(cfg(17), 0.25).assemble(&reads).unwrap();
        assert!(!output.contigs.is_empty());
        assert!(output.stats.total_length > 3_000);
        assert_eq!(output.batch_compaction.len(), 4);
    }

    #[test]
    fn batching_reduces_peak_footprint() {
        let reads = reads_for(6_000, 20.0, 33);
        let output = BatchAssembler::new(cfg(17), 0.2).assemble(&reads).unwrap();
        assert!(
            output.footprint_reduction() > 2.0,
            "reduction = {}",
            output.footprint_reduction()
        );
    }

    #[test]
    fn smaller_batches_do_not_improve_n50() {
        // Table 1's trend: N50 is non-increasing as the batch size shrinks.
        let reads = reads_for(8_000, 25.0, 55);
        let full = BatchAssembler::new(cfg(17), 1.0).assemble(&reads).unwrap();
        let tenth = BatchAssembler::new(cfg(17), 0.1).assemble(&reads).unwrap();
        assert!(
            tenth.stats.n50 <= full.stats.n50,
            "tenth = {}, full = {}",
            tenth.stats.n50,
            full.stats.n50
        );
    }

    #[test]
    fn single_batch_matches_unbatched_pipeline() {
        // A single batch runs the same pipeline; the only difference is the final
        // contig-containment dedup, so the assembled content must agree closely.
        let reads = reads_for(4_000, 15.0, 77);
        let unbatched = crate::pipeline::PakmanAssembler::new(cfg(17))
            .assemble(&reads)
            .unwrap();
        let single_batch = BatchAssembler::new(cfg(17), 1.0).assemble(&reads).unwrap();
        let ratio = single_batch.stats.total_length as f64 / unbatched.stats.total_length as f64;
        // The containment dedup drops reverse-strand / repeat duplicates, so the
        // single-batch total is bounded by the unbatched total but stays the same
        // order of magnitude, and the longest contig is identical.
        assert!((0.4..=1.0).contains(&ratio), "ratio = {ratio}");
        assert!(single_batch.stats.largest_contig == unbatched.stats.largest_contig);
    }

    #[test]
    fn overlapped_schedule_matches_sequential() {
        let reads = reads_for(6_000, 20.0, 91);
        let mut config = cfg(17);
        config.record_trace = true;
        let sequential = BatchAssembler::with_schedule(config, 0.2, BatchSchedule::Sequential)
            .assemble(&reads)
            .unwrap();
        let overlapped = BatchAssembler::with_schedule(config, 0.2, BatchSchedule::Overlapped)
            .assemble(&reads)
            .unwrap();
        assert_eq!(overlapped.contigs, sequential.contigs);
        assert_eq!(overlapped.stats, sequential.stats);
        assert_eq!(overlapped.batch_compaction, sequential.batch_compaction);
        assert_eq!(overlapped.batch_traces, sequential.batch_traces);
        assert!(!overlapped.batch_traces.is_empty());
    }

    #[test]
    fn pipelined_schedules_match_sequential_at_any_depth() {
        let reads = reads_for(6_000, 20.0, 91);
        let mut config = cfg(17);
        config.record_trace = true;
        let sequential = BatchAssembler::with_schedule(config, 0.1, BatchSchedule::Sequential)
            .assemble(&reads)
            .unwrap();
        for depth in [0, 1, 3, 16] {
            let pipelined = BatchAssembler::with_schedule(
                config,
                0.1,
                BatchSchedule::Pipelined {
                    depth,
                    max_inflight_bytes: None,
                },
            )
            .assemble(&reads)
            .unwrap();
            assert_eq!(pipelined.contigs, sequential.contigs, "depth = {depth}");
            assert_eq!(
                pipelined.batch_compaction, sequential.batch_compaction,
                "depth = {depth}"
            );
            assert_eq!(
                pipelined.batch_traces, sequential.batch_traces,
                "depth = {depth}"
            );
        }
    }

    #[test]
    fn byte_budget_bounds_the_inflight_window() {
        let reads = reads_for(6_000, 20.0, 47);
        let unbounded = BatchAssembler::with_schedule(
            cfg(17),
            0.1,
            BatchSchedule::Pipelined {
                depth: 4,
                max_inflight_bytes: None,
            },
        )
        .assemble(&reads)
        .unwrap();
        // Budget just above one batch: the deep window degrades gracefully to
        // (nearly) one batch in flight, and the output does not change a bit.
        let one_batch_bytes = ReadChunk::Borrowed(&reads[..reads.len() / 10]).approx_read_bytes();
        let budget = one_batch_bytes * 3 / 2;
        let bounded = BatchAssembler::with_schedule(
            cfg(17),
            0.1,
            BatchSchedule::Pipelined {
                depth: 4,
                max_inflight_bytes: Some(budget),
            },
        )
        .assemble(&reads)
        .unwrap();
        assert_eq!(bounded.contigs, unbounded.contigs);
        assert_eq!(bounded.batch_compaction, unbounded.batch_compaction);
        // One admitted batch plus at most one staged chunk can be resident.
        assert!(
            bounded.peak_inflight_read_bytes <= budget + one_batch_bytes + 1024,
            "peak {} exceeds budget {budget} + one batch {one_batch_bytes}",
            bounded.peak_inflight_read_bytes
        );
        assert!(bounded.peak_inflight_read_bytes < unbounded.peak_inflight_read_bytes);
    }

    #[test]
    fn sequential_peak_is_one_batch() {
        let reads = reads_for(4_000, 15.0, 13);
        let output = BatchAssembler::with_schedule(cfg(17), 0.25, BatchSchedule::Sequential)
            .assemble(&reads)
            .unwrap();
        let whole = ReadChunk::Borrowed(&reads[..]).approx_read_bytes();
        assert!(output.peak_inflight_read_bytes > 0);
        assert!(
            output.peak_inflight_read_bytes < whole,
            "sequential peak {} should be far below the whole read set {whole}",
            output.peak_inflight_read_bytes
        );
    }

    #[test]
    fn assemble_source_uses_chunks_as_batches() {
        let reads = reads_for(6_000, 20.0, 63);
        // Boundary equality with the 0.25-fraction plan needs 4 equal chunks:
        // count-based chunking only matches by_fraction's remainder-first
        // split when 4 divides the read count.
        assert_eq!(
            reads.len() % 4,
            0,
            "pick a workload divisible into 4 batches"
        );
        let chunked = BatchAssembler::new(cfg(17), 1.0)
            .assemble_source(InMemorySource::chunked(&reads, reads.len() / 4))
            .unwrap();
        assert_eq!(chunked.batch_compaction.len(), 4);
        // The same boundaries through the slice API agree bit for bit.
        let planned = BatchAssembler::new(cfg(17), 0.25).assemble(&reads).unwrap();
        assert_eq!(chunked.contigs, planned.contigs);
        assert_eq!(chunked.batch_compaction, planned.batch_compaction);
    }

    #[test]
    fn default_schedule_is_overlapped() {
        let assembler = BatchAssembler::new(cfg(17), 0.5);
        assert_eq!(assembler.schedule(), BatchSchedule::Overlapped);
    }
}
