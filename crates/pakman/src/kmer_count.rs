//! Parallel k-mer counting (assembly step B, Fig. 2).
//!
//! Implements the paper's §4.5 "Improved Parallelism" optimizations:
//!
//! * **(a) parallel sliding window** — reads are partitioned across worker threads and
//!   each thread slides its own window over its reads;
//! * **(b) pre-allocated per-thread vectors** — every worker extracts packed k-mers into
//!   its own vector sized up front, avoiding repeated reallocation of one shared vector;
//! * **(c) parallel sorting** — per-thread vectors are sorted independently and merged,
//!   replacing the serial global sort of the original PaKman implementation.
//!
//! After sorting, duplicate k-mers are counted and k-mers below the error threshold are
//! pruned.

use crate::config::PakmanConfig;
use crate::error::PakmanError;
use nmp_pak_genome::{Kmer, SequencingRead};

/// Configuration subset used by the k-mer counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmerCounterConfig {
    /// k-mer length.
    pub k: usize,
    /// k-mers observed fewer than this many times are pruned.
    pub min_count: u32,
    /// Number of worker threads.
    pub threads: usize,
}

impl From<&PakmanConfig> for KmerCounterConfig {
    fn from(cfg: &PakmanConfig) -> Self {
        KmerCounterConfig {
            k: cfg.k,
            min_count: cfg.min_kmer_count,
            threads: cfg.threads,
        }
    }
}

/// A distinct k-mer with its multiplicity in the read set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountedKmer {
    /// The k-mer value.
    pub kmer: Kmer,
    /// Number of occurrences across all reads.
    pub count: u32,
}

/// Summary statistics from a k-mer counting run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KmerCountStats {
    /// Total (non-distinct) k-mers extracted from the reads.
    pub total_kmers: u64,
    /// Distinct k-mers observed.
    pub distinct_kmers: usize,
    /// Distinct k-mers discarded because their count fell below the threshold.
    pub pruned_kmers: usize,
    /// Reads skipped because they were shorter than k.
    pub skipped_reads: usize,
}

/// Counts the k-mers of `reads`, returning them sorted in ascending lexicographic
/// order (the order MacroNodes are later laid out across DIMMs).
///
/// # Errors
///
/// * [`PakmanError::InvalidConfig`] for an unsupported `k` or a zero thread count.
/// * [`PakmanError::EmptyInput`] if no read is at least `k` bases long.
pub fn count_kmers(
    reads: &[SequencingRead],
    config: KmerCounterConfig,
) -> Result<(Vec<CountedKmer>, KmerCountStats), PakmanError> {
    if config.k < 2 || config.k > nmp_pak_genome::kmer::MAX_K {
        return Err(PakmanError::InvalidConfig {
            message: format!("k = {} must lie in 2..=32", config.k),
        });
    }
    if config.threads == 0 {
        return Err(PakmanError::InvalidConfig {
            message: "thread count must be at least 1".to_string(),
        });
    }

    let threads = config.threads.min(reads.len().max(1));
    let chunk_size = reads.len().div_ceil(threads).max(1);

    // (a)+(b): per-thread extraction into pre-allocated, thread-local vectors,
    // (c): per-thread sort. std::thread::scope keeps this dependency-free.
    let mut per_thread: Vec<Vec<u64>> = Vec::with_capacity(threads);
    let mut skipped_total = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for chunk in reads.chunks(chunk_size) {
            let k = config.k;
            handles.push(scope.spawn(move || {
                let capacity: usize = chunk
                    .iter()
                    .map(|r| r.len().saturating_sub(k - 1))
                    .sum();
                let mut local: Vec<u64> = Vec::with_capacity(capacity);
                let mut skipped = 0usize;
                for read in chunk {
                    if read.len() < k {
                        skipped += 1;
                        continue;
                    }
                    for kmer in Kmer::iter_windows(read.sequence(), k)
                        .expect("read length checked above")
                    {
                        local.push(kmer.packed());
                    }
                }
                local.sort_unstable();
                (local, skipped)
            }));
        }
        for handle in handles {
            let (local, skipped) = handle.join().expect("k-mer counting worker panicked");
            skipped_total += skipped;
            per_thread.push(local);
        }
    });

    let total_kmers: u64 = per_thread.iter().map(|v| v.len() as u64).sum();
    if total_kmers == 0 {
        return Err(PakmanError::EmptyInput {
            message: format!("no read is at least k = {} bases long", config.k),
        });
    }

    // Merge the pre-sorted per-thread runs. The final vector is pre-allocated to the
    // exact total size (§4.5 (b)).
    let merged = merge_sorted_runs(per_thread, total_kmers as usize);

    // Run-length count duplicates and prune low-count k-mers.
    let mut counted = Vec::new();
    let mut pruned = 0usize;
    let mut distinct = 0usize;
    let mut i = 0usize;
    while i < merged.len() {
        let value = merged[i];
        let mut j = i + 1;
        while j < merged.len() && merged[j] == value {
            j += 1;
        }
        let count = (j - i) as u32;
        distinct += 1;
        if count >= config.min_count {
            counted.push(CountedKmer {
                kmer: kmer_from_packed(value, config.k),
                count,
            });
        } else {
            pruned += 1;
        }
        i = j;
    }

    let stats = KmerCountStats {
        total_kmers,
        distinct_kmers: distinct,
        pruned_kmers: pruned,
        skipped_reads: skipped_total,
    };
    Ok((counted, stats))
}

/// Reconstructs a [`Kmer`] from its packed representation.
fn kmer_from_packed(packed: u64, k: usize) -> Kmer {
    use nmp_pak_genome::Base;
    let bases = (0..k).map(|i| {
        let shift = 2 * (k - 1 - i);
        Base::from_code(((packed >> shift) & 0b11) as u8)
    });
    Kmer::from_bases(bases).expect("k validated by caller")
}

/// K-way merge of pre-sorted runs into one sorted vector.
fn merge_sorted_runs(mut runs: Vec<Vec<u64>>, total: usize) -> Vec<u64> {
    runs.retain(|r| !r.is_empty());
    match runs.len() {
        0 => Vec::new(),
        1 => runs.pop().expect("one run present"),
        _ => {
            // Repeated pairwise merging: O(n log r), simple and cache-friendly for the
            // small run counts used here (≤ thread count).
            while runs.len() > 1 {
                let mut next = Vec::with_capacity(runs.len().div_ceil(2));
                let mut iter = runs.into_iter();
                while let Some(a) = iter.next() {
                    match iter.next() {
                        Some(b) => next.push(merge_two(a, b)),
                        None => next.push(a),
                    }
                }
                runs = next;
            }
            let out = runs.pop().expect("one run remains");
            debug_assert_eq!(out.len(), total);
            out
        }
    }
}

fn merge_two(a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_pak_genome::DnaString;

    fn reads_from(strs: &[&str]) -> Vec<SequencingRead> {
        strs.iter()
            .enumerate()
            .map(|(i, s)| SequencingRead::new(format!("r{i}"), s.parse::<DnaString>().unwrap()))
            .collect()
    }

    #[test]
    fn counts_simple_overlapping_kmers() {
        // "ACGTAC" with k=4 → ACGT, CGTA, GTAC
        let reads = reads_from(&["ACGTAC", "ACGTAC"]);
        let (counted, stats) = count_kmers(
            &reads,
            KmerCounterConfig { k: 4, min_count: 1, threads: 2 },
        )
        .unwrap();
        assert_eq!(stats.total_kmers, 6);
        assert_eq!(stats.distinct_kmers, 3);
        assert_eq!(counted.len(), 3);
        assert!(counted.iter().all(|c| c.count == 2));
    }

    #[test]
    fn output_is_sorted_ascending() {
        let reads = reads_from(&["TTTTGGGGCCCCAAAA", "GATTACAGATTACA"]);
        let (counted, _) = count_kmers(
            &reads,
            KmerCounterConfig { k: 5, min_count: 1, threads: 3 },
        )
        .unwrap();
        for pair in counted.windows(2) {
            assert!(pair[0].kmer < pair[1].kmer, "{:?} !< {:?}", pair[0], pair[1]);
        }
    }

    #[test]
    fn pruning_removes_low_count_kmers() {
        let reads = reads_from(&["ACGTACGT", "ACGTACGT", "TTTTTTTT"]);
        let (counted, stats) = count_kmers(
            &reads,
            KmerCounterConfig { k: 6, min_count: 2, threads: 2 },
        )
        .unwrap();
        // The TTTTTT k-mer appears 3 times (windows of the single poly-T read), the
        // ACGTAC-family k-mers appear twice.
        assert!(counted.iter().all(|c| c.count >= 2));
        assert!(stats.pruned_kmers == 0 || stats.pruned_kmers < stats.distinct_kmers);
    }

    #[test]
    fn prune_threshold_filters_singletons() {
        let reads = reads_from(&["ACGTACGTAC", "GGGGGGGGGG"]);
        let (with_singletons, _) = count_kmers(
            &reads,
            KmerCounterConfig { k: 8, min_count: 1, threads: 1 },
        )
        .unwrap();
        let (without_singletons, stats) = count_kmers(
            &reads,
            KmerCounterConfig { k: 8, min_count: 2, threads: 1 },
        )
        .unwrap();
        assert!(without_singletons.len() < with_singletons.len());
        assert!(stats.pruned_kmers > 0);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let reads = reads_from(&[
            "ACGTACGTACGTTTTACG",
            "GGGCCCAAATTTACGTAG",
            "ACGTACGTACGTTTTACG",
            "TTGACCAGTTGACCAGTT",
        ]);
        let single = count_kmers(
            &reads,
            KmerCounterConfig { k: 7, min_count: 1, threads: 1 },
        )
        .unwrap()
        .0;
        for threads in [2, 3, 8] {
            let multi = count_kmers(
                &reads,
                KmerCounterConfig { k: 7, min_count: 1, threads },
            )
            .unwrap()
            .0;
            assert_eq!(single, multi, "threads = {threads}");
        }
    }

    #[test]
    fn short_reads_are_skipped() {
        let reads = reads_from(&["ACG", "ACGTACGT"]);
        let (_, stats) = count_kmers(
            &reads,
            KmerCounterConfig { k: 5, min_count: 1, threads: 2 },
        )
        .unwrap();
        assert_eq!(stats.skipped_reads, 1);
    }

    #[test]
    fn all_short_reads_is_an_error() {
        let reads = reads_from(&["ACG", "TT"]);
        assert!(matches!(
            count_kmers(&reads, KmerCounterConfig { k: 5, min_count: 1, threads: 2 }),
            Err(PakmanError::EmptyInput { .. })
        ));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let reads = reads_from(&["ACGTACGT"]);
        assert!(count_kmers(&reads, KmerCounterConfig { k: 1, min_count: 1, threads: 1 }).is_err());
        assert!(count_kmers(&reads, KmerCounterConfig { k: 40, min_count: 1, threads: 1 }).is_err());
        assert!(count_kmers(&reads, KmerCounterConfig { k: 5, min_count: 1, threads: 0 }).is_err());
    }

    #[test]
    fn total_count_is_conserved() {
        let reads = reads_from(&["ACGTACGTACGTACGT", "TGCATGCATGCA"]);
        let expected_total: u64 = reads.iter().map(|r| (r.len() - 6 + 1) as u64).sum();
        let (counted, stats) = count_kmers(
            &reads,
            KmerCounterConfig { k: 6, min_count: 1, threads: 2 },
        )
        .unwrap();
        assert_eq!(stats.total_kmers, expected_total);
        let sum: u64 = counted.iter().map(|c| c.count as u64).sum();
        assert_eq!(sum, expected_total);
    }
}
