//! Parallel k-mer counting (assembly step B, Fig. 2).
//!
//! Implements the paper's §4.5 "Improved Parallelism" optimizations:
//!
//! * **(a) parallel sliding window** — reads are partitioned across worker threads and
//!   each thread slides its own window over its reads;
//! * **(b) pre-allocated per-thread vectors** — every worker extracts packed k-mers into
//!   its own vector sized up front, avoiding repeated reallocation of one shared vector;
//! * **(c) parallel sorting** — per-thread vectors are sorted independently and merged,
//!   replacing the serial global sort of the original PaKman implementation.
//!
//! The whole phase is *bucket-major*: the top bits of the packed k-mer statically
//! partition the value space (the same ascending-order discipline the paper uses to
//! lay MacroNodes out across DIMMs, §4.2), every thread scatters into its own copy
//! of those buckets while extracting, and each bucket is then finished
//! independently — per-thread runs sorted while cache-resident, merged pairwise,
//! and the *final* merge fused with the duplicate run-length count and the
//! error-threshold prune, emitting [`CountedKmer`]s directly from the packed `u64`
//! stream via [`Kmer::from_packed`]. Concatenating the buckets in order *is* the
//! globally sorted output: no phase of step B unpacks a base, materializes a
//! monolithic merged vector, or re-scans the full stream.

use crate::config::{PakmanConfig, SpillConfig};
use crate::control::RunControl;
use crate::error::PakmanError;
use crate::memory::MemoryBudget;
use crate::par::merge_two;
use crate::spill::{kway_merge, SpillIoStats, SpillStore, SpillTelemetry};
use nmp_pak_genome::{Kmer, SequencingRead};

/// Configuration subset used by the k-mer counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmerCounterConfig {
    /// k-mer length.
    pub k: usize,
    /// k-mers observed fewer than this many times are pruned.
    pub min_count: u32,
    /// Number of worker threads.
    pub threads: usize,
}

impl From<&PakmanConfig> for KmerCounterConfig {
    fn from(cfg: &PakmanConfig) -> Self {
        KmerCounterConfig {
            k: cfg.k,
            min_count: cfg.min_kmer_count,
            threads: cfg.threads,
        }
    }
}

/// A distinct k-mer with its multiplicity in the read set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountedKmer {
    /// The k-mer value.
    pub kmer: Kmer,
    /// Number of occurrences across all reads.
    pub count: u32,
}

/// Summary statistics from a k-mer counting run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KmerCountStats {
    /// Total (non-distinct) k-mers extracted from the reads.
    pub total_kmers: u64,
    /// Distinct k-mers observed.
    pub distinct_kmers: usize,
    /// Distinct k-mers discarded because their count fell below the threshold.
    pub pruned_kmers: usize,
    /// Reads skipped because they were shorter than k.
    pub skipped_reads: usize,
}

/// Counts the k-mers of `reads`, returning them sorted in ascending lexicographic
/// order (the order MacroNodes are later laid out across DIMMs).
///
/// # Errors
///
/// * [`PakmanError::InvalidConfig`] for an unsupported `k` or a zero thread count.
/// * [`PakmanError::EmptyInput`] if no read is at least `k` bases long.
pub fn count_kmers(
    reads: &[SequencingRead],
    config: KmerCounterConfig,
) -> Result<(Vec<CountedKmer>, KmerCountStats), PakmanError> {
    validate_counter_config(&config)?;

    let threads = config.threads.min(reads.len().max(1));
    let chunk_size = reads.len().div_ceil(threads).max(1);
    let bucket_bits = bucket_bits_for(reads, &config, threads);
    let buckets = 1usize << bucket_bits;

    // Phase 1 — §4.5 (a)+(b)+(c): per-thread extraction over the packed read
    // bytes, scattering into per-thread buckets, each bucket sorted independently.
    let mut per_thread: Vec<Vec<Vec<u64>>> = Vec::with_capacity(threads);
    let mut skipped_total = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for chunk in reads.chunks(chunk_size) {
            let k = config.k;
            handles.push(scope.spawn(move || extract_sorted_buckets(chunk, k, bucket_bits)));
        }
        for handle in handles {
            let (local, skipped) = handle.join().expect("k-mer counting worker panicked");
            skipped_total += skipped;
            per_thread.push(local);
        }
    });

    let total_kmers: u64 = per_thread
        .iter()
        .flat_map(|t| t.iter())
        .map(|b| b.len() as u64)
        .sum();
    if total_kmers == 0 {
        return Err(PakmanError::EmptyInput {
            message: format!("no read is at least k = {} bases long", config.k),
        });
    }

    // Regroup the sorted runs bucket-major (moves vector handles, not data).
    let mut bucket_runs: Vec<Vec<Vec<u64>>> =
        (0..buckets).map(|_| Vec::with_capacity(threads)).collect();
    for thread_buckets in per_thread {
        for (b, run) in thread_buckets.into_iter().enumerate() {
            if !run.is_empty() {
                bucket_runs[b].push(run);
            }
        }
    }

    // Phase 2: per bucket, merge the per-thread runs pairwise and fuse the
    // run-length count + prune into the final merge. Buckets are distributed over
    // scoped threads in contiguous ranges, so concatenating the worker outputs in
    // order yields the ascending counted stream whatever the thread count.
    let per_worker = buckets.div_ceil(threads);
    let mut worker_outputs: Vec<(Vec<CountedKmer>, usize, usize)> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for group in bucket_runs.chunks_mut(per_worker) {
            let k = config.k;
            let min_count = config.min_count;
            handles.push(scope.spawn(move || {
                let mut counted = Vec::new();
                let (mut distinct, mut pruned) = (0usize, 0usize);
                for runs in group.iter_mut() {
                    let runs = std::mem::take(runs);
                    let (c, d, p) = merge_count_bucket(runs, k, min_count);
                    counted.extend(c);
                    distinct += d;
                    pruned += p;
                }
                (counted, distinct, pruned)
            }));
        }
        for handle in handles {
            worker_outputs.push(handle.join().expect("merge-count worker panicked"));
        }
    });

    let surviving: usize = worker_outputs.iter().map(|(c, _, _)| c.len()).sum();
    let mut counted = Vec::with_capacity(surviving);
    let (mut distinct, mut pruned) = (0usize, 0usize);
    for (c, d, p) in worker_outputs {
        counted.extend(c);
        distinct += d;
        pruned += p;
    }
    debug_assert!(counted.windows(2).all(|w| w[0].kmer < w[1].kmer));

    let stats = KmerCountStats {
        total_kmers,
        distinct_kmers: distinct,
        pruned_kmers: pruned,
        skipped_reads: skipped_total,
    };
    Ok((counted, stats))
}

fn validate_counter_config(config: &KmerCounterConfig) -> Result<(), PakmanError> {
    if config.k < 2 || config.k > nmp_pak_genome::kmer::MAX_K {
        return Err(PakmanError::InvalidConfig {
            message: format!("k = {} must lie in 2..=32", config.k),
        });
    }
    if config.threads == 0 {
        return Err(PakmanError::InvalidConfig {
            message: "thread count must be at least 1".to_string(),
        });
    }
    Ok(())
}

/// Bucket count: aim for per-(thread, bucket) runs of a few hundred elements so
/// every sort in phase 1 stays cache-resident. Shared by all threads — bucket
/// boundaries are a pure function of the k-mer value, never of the chunking.
fn bucket_bits_for(reads: &[SequencingRead], config: &KmerCounterConfig, threads: usize) -> u32 {
    let kmer_bits = 2 * config.k as u32;
    let capacity_total: usize = reads
        .iter()
        .map(|r| r.len().saturating_sub(config.k - 1))
        .sum();
    (usize::BITS - (capacity_total / (512 * threads)).leading_zeros())
        .min(kmer_bits - 1)
        .min(12)
}

/// Counts the k-mers of `reads` under a resident-byte budget, spilling the
/// largest buckets to disk as sorted runs whenever the extracted k-mer bytes
/// overflow it (external-memory counting; see `pakman/spill.rs`).
///
/// Reads are consumed in *waves* sized to half the budget. Each wave is
/// extracted and sorted exactly like [`count_kmers`] phase 1, merged into the
/// single resident sorted run each bucket keeps, and then — if the
/// [`MemoryBudget`] ledger reports an overdraft — the largest buckets are
/// flushed through a [`SpillStore`] (largest-first eviction, written in
/// ascending bucket order so every run is sorted) until residency falls to half
/// the budget. The final k-way merge over all runs fuses the run-length count
/// and the `min_count` prune exactly like the in-memory path, so the counted
/// stream is **bit-identical** to [`count_kmers`] at any budget, thread count
/// or partition count; only the [`SpillTelemetry`] varies.
///
/// `partitions` is the owner-hash disk-partition count, normally the shard
/// count, so spill files align with shard ownership.
///
/// # Errors
///
/// * [`PakmanError::InvalidConfig`] for an unsupported `k`, a zero thread
///   count, an invalid `spill` config or an unbounded budget.
/// * [`PakmanError::EmptyInput`] if no read is at least `k` bases long.
/// * [`PakmanError::Spill`] for spill-file I/O or framing failures.
pub fn count_kmers_spilled(
    reads: &[SequencingRead],
    config: KmerCounterConfig,
    spill: &SpillConfig,
    partitions: usize,
) -> Result<(Vec<CountedKmer>, KmerCountStats, SpillTelemetry), PakmanError> {
    count_kmers_spilled_controlled(reads, config, spill, partitions, &RunControl::default())
}

/// [`count_kmers_spilled`] under a [`RunControl`]: the spill budget is chained
/// into the control's global ledger (so host-wide pressure from other tenants
/// triggers eviction exactly like local pressure — the counted stream stays
/// bit-identical either way, only `SpillTelemetry` varies) and the cancellation
/// token is polled once per ingest wave.
///
/// # Errors
///
/// Everything [`count_kmers_spilled`] returns, plus [`PakmanError::Cancelled`]
/// when the token fires between waves.
pub fn count_kmers_spilled_controlled(
    reads: &[SequencingRead],
    config: KmerCounterConfig,
    spill: &SpillConfig,
    partitions: usize,
    control: &RunControl<'_>,
) -> Result<(Vec<CountedKmer>, KmerCountStats, SpillTelemetry), PakmanError> {
    validate_counter_config(&config)?;
    spill.validate()?;
    let Some(budget_bytes) = spill.max_resident_bytes else {
        return Err(PakmanError::InvalidConfig {
            message: "spilled counting requires a bounded resident-byte budget".to_string(),
        });
    };
    let partitions = partitions.max(1);
    let budget = control.adopt(MemoryBudget::bounded(budget_bytes));
    let result = count_spilled_inner(
        reads,
        config,
        spill,
        partitions,
        budget_bytes,
        &budget,
        control,
    );
    // Whatever is still charged (in-memory finish keeps buckets resident; error
    // and cancellation paths abandon them) must not linger in a chained global
    // ledger after the local buffers are dropped.
    budget.release(budget.used());
    result
}

#[allow(clippy::too_many_lines)]
fn count_spilled_inner(
    reads: &[SequencingRead],
    config: KmerCounterConfig,
    spill: &SpillConfig,
    partitions: usize,
    budget_bytes: u64,
    budget: &MemoryBudget,
    control: &RunControl<'_>,
) -> Result<(Vec<CountedKmer>, KmerCountStats, SpillTelemetry), PakmanError> {
    let threads = config.threads.min(reads.len().max(1));
    let bucket_bits = bucket_bits_for(reads, &config, threads);
    let buckets = 1usize << bucket_bits;

    let mut resident: Vec<Vec<u64>> = vec![Vec::new(); buckets];
    let mut store = SpillStore::create(partitions)?;
    let mut total_kmers = 0u64;
    let mut skipped_total = 0usize;

    // Wave boundaries are a pure function of the reads and the budget — never of
    // the thread count — so the ingest schedule itself is deterministic.
    let wave_target = (budget_bytes / 2).max(8);
    let mut start = 0usize;
    while start < reads.len() {
        control.check("stage B (spilled k-mer counting)")?;
        let mut end = start;
        let mut wave_bytes = 0u64;
        while end < reads.len() {
            let bytes = reads[end].len().saturating_sub(config.k - 1) as u64 * 8;
            if end > start && wave_bytes + bytes > wave_target {
                break;
            }
            wave_bytes += bytes;
            end += 1;
        }
        let wave = &reads[start..end];
        start = end;

        // §4.5 (a)+(b)+(c) on the wave, identical to count_kmers phase 1.
        let wave_threads = threads.min(wave.len());
        let chunk_size = wave.len().div_ceil(wave_threads).max(1);
        let mut per_thread: Vec<Vec<Vec<u64>>> = Vec::with_capacity(wave_threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(wave_threads);
            for chunk in wave.chunks(chunk_size) {
                let k = config.k;
                handles.push(scope.spawn(move || extract_sorted_buckets(chunk, k, bucket_bits)));
            }
            for handle in handles {
                let (local, skipped) = handle.join().expect("k-mer counting worker panicked");
                skipped_total += skipped;
                per_thread.push(local);
            }
        });

        // Regroup bucket-major and charge the new bytes to the shared ledger.
        let mut wave_runs: Vec<Vec<Vec<u64>>> = (0..buckets).map(|_| Vec::new()).collect();
        for thread_buckets in per_thread {
            for (b, run) in thread_buckets.into_iter().enumerate() {
                if !run.is_empty() {
                    total_kmers += run.len() as u64;
                    budget.charge(run.len() as u64 * 8);
                    wave_runs[b].push(run);
                }
            }
        }

        // Fold the wave into the one sorted resident run per bucket (parallel
        // over contiguous bucket ranges, same discipline as count_kmers phase 2).
        let per_worker = buckets.div_ceil(threads);
        std::thread::scope(|scope| {
            for (res_group, wave_group) in resident
                .chunks_mut(per_worker)
                .zip(wave_runs.chunks_mut(per_worker))
            {
                scope.spawn(move || {
                    for (res, runs) in res_group.iter_mut().zip(wave_group.iter_mut()) {
                        let mut runs = std::mem::take(runs);
                        if runs.is_empty() {
                            continue;
                        }
                        if !res.is_empty() {
                            runs.push(std::mem::take(res));
                        }
                        *res = merge_runs_to_one(runs);
                    }
                });
            }
        });

        // Evict largest-first until residency falls to half the budget, so the
        // next wave has headroom and small hot buckets stay in memory.
        if budget.is_over() {
            let mut order: Vec<usize> = (0..buckets).filter(|&b| !resident[b].is_empty()).collect();
            order.sort_by_key(|&b| (std::cmp::Reverse(resident[b].len()), b));
            let target = budget_bytes / 2;
            let mut projected = budget.used();
            let mut selected = Vec::new();
            for b in order {
                if projected <= target {
                    break;
                }
                projected = projected.saturating_sub(resident[b].len() as u64 * 8);
                selected.push(b);
            }
            // Ascending bucket order keeps the flushed stream globally sorted.
            selected.sort_unstable();
            let slices: Vec<&Vec<u64>> = selected.iter().map(|&b| &resident[b]).collect();
            store.flush_buckets(&slices)?;
            for &b in &selected {
                budget.release(resident[b].len() as u64 * 8);
                resident[b] = Vec::new();
            }
        }
    }

    if total_kmers == 0 {
        return Err(PakmanError::EmptyInput {
            message: format!("no read is at least k = {} bases long", config.k),
        });
    }

    let (counted, distinct, pruned, io) = if store.has_runs() {
        // Flush the still-resident buckets (ascending bucket order) so the final
        // merge has a single source of truth: the run files.
        let remaining: Vec<&Vec<u64>> = resident.iter().filter(|r| !r.is_empty()).collect();
        if !remaining.is_empty() {
            store.flush_buckets(&remaining)?;
        }
        for run in &mut resident {
            budget.release(run.len() as u64 * 8);
            *run = Vec::new();
        }

        let (mut cursors, io, _store) = store.into_cursors(spill.merge_fan_in)?;
        let mut counted = Vec::new();
        let (mut distinct, mut pruned) = (0usize, 0usize);
        let (k, min_count) = (config.k, config.min_count);
        let mut current: Option<(u64, u32)> = None;
        kway_merge(&mut cursors, |value| match current {
            Some((v, c)) if v == value => current = Some((v, c + 1)),
            other => {
                if let Some((v, c)) = other {
                    distinct += 1;
                    if c >= min_count {
                        counted.push(CountedKmer {
                            kmer: Kmer::from_packed(v, k),
                            count: c,
                        });
                    } else {
                        pruned += 1;
                    }
                }
                current = Some((value, 1));
            }
        })?;
        if let Some((v, c)) = current {
            distinct += 1;
            if c >= min_count {
                counted.push(CountedKmer {
                    kmer: Kmer::from_packed(v, k),
                    count: c,
                });
            } else {
                pruned += 1;
            }
        }
        (counted, distinct, pruned, io)
    } else {
        // The workload never overflowed the budget: finish entirely in memory,
        // bucket by bucket in ascending order, exactly like count_kmers.
        let mut counted = Vec::new();
        let (mut distinct, mut pruned) = (0usize, 0usize);
        for run in &resident {
            if run.is_empty() {
                continue;
            }
            let (c, d, p) = run_length_count(run, config.k, config.min_count);
            counted.extend(c);
            distinct += d;
            pruned += p;
        }
        (counted, distinct, pruned, SpillIoStats::default())
    };
    debug_assert!(counted.windows(2).all(|w| w[0].kmer < w[1].kmer));

    let stats = KmerCountStats {
        total_kmers,
        distinct_kmers: distinct,
        pruned_kmers: pruned,
        skipped_reads: skipped_total,
    };
    let telemetry = SpillTelemetry {
        budget_bytes,
        bytes_spilled: io.bytes_spilled,
        runs_written: io.runs_written,
        merge_passes: io.merge_passes,
        peak_resident_bytes: budget.peak_bytes(),
        partitions,
    };
    Ok((counted, stats, telemetry))
}

/// Pairwise-merges pre-sorted runs into one. No counting or pruning happens
/// here — duplicates must survive until the final fused merge.
fn merge_runs_to_one(mut runs: Vec<Vec<u64>>) -> Vec<u64> {
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(merge_two(a, b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

/// Partitions the sorted counted stream by owner shard for owner-computes
/// sharded construction: record `i` of the result's shard `s` is the `i`-th
/// counted k-mer (in global ascending order) whose *prefix* (k-1)-mer —
/// `packed >> 2`, the MacroNode that receives the k-mer's suffix extension — is
/// owned by shard `s` under [`nmp_pak_genome::shard_of_packed`].
///
/// The partition is stable, so each per-shard stream is itself ascending and
/// concatenating the streams in shard-merge order reproduces the global stream.
/// Prefix-extension records (owned by the *suffix* (k-1)-mer's shard) are
/// exchanged separately during construction — the construction-time equivalent
/// of the compaction mailbox.
pub fn partition_counted_by_owner(
    counted: &[CountedKmer],
    shard_count: usize,
) -> Vec<Vec<CountedKmer>> {
    let shards = shard_count.max(1);
    let mut out: Vec<Vec<CountedKmer>> = Vec::with_capacity(shards);
    // Size each stream in one counting pass so the scatter never reallocates.
    let mut sizes = vec![0usize; shards];
    for ck in counted {
        sizes[nmp_pak_genome::shard_of_packed(ck.kmer.packed() >> 2, shards)] += 1;
    }
    for &size in &sizes {
        out.push(Vec::with_capacity(size));
    }
    for ck in counted {
        out[nmp_pak_genome::shard_of_packed(ck.kmer.packed() >> 2, shards)].push(*ck);
    }
    out
}

/// Finishes one bucket: merges its pre-sorted runs pairwise until two remain and
/// fuses the run-length count into the final merge.
fn merge_count_bucket(
    mut runs: Vec<Vec<u64>>,
    k: usize,
    min_count: u32,
) -> (Vec<CountedKmer>, usize, usize) {
    match runs.len() {
        0 => (Vec::new(), 0, 0),
        1 => run_length_count(&runs[0], k, min_count),
        _ => {
            while runs.len() > 2 {
                let mut next = Vec::with_capacity(runs.len().div_ceil(2));
                let mut iter = runs.into_iter();
                while let Some(a) = iter.next() {
                    match iter.next() {
                        Some(b) => next.push(merge_two(a, b)),
                        None => next.push(a),
                    }
                }
                runs = next;
            }
            let b = runs.pop().expect("two runs remain");
            let a = runs.pop().expect("two runs remain");
            merge_count_segment(&a, &b, k, min_count)
        }
    }
}

/// Extracts the packed k-mers of one read chunk into `2^bucket_bits` sorted
/// buckets (bucket = top bits of the packed k-mer, so buckets partition the value
/// space in ascending order).
///
/// The sliding window works on the raw 2-bit codes of the packed read bytes
/// ([`nmp_pak_genome::DnaString::codes`]) — no per-base enum round-trips — and
/// scatters while extracting; each bucket is then sorted independently, small
/// enough to stay cache-resident, unlike one monolithic sort of the whole chunk.
/// Returns the buckets and the number of reads shorter than `k`.
fn extract_sorted_buckets(
    chunk: &[SequencingRead],
    k: usize,
    bucket_bits: u32,
) -> (Vec<Vec<u64>>, usize) {
    let capacity: usize = chunk.iter().map(|r| r.len().saturating_sub(k - 1)).sum();
    let mut skipped = 0usize;
    let kmer_bits = 2 * k as u32;
    let mask = if kmer_bits == 64 {
        u64::MAX
    } else {
        (1u64 << kmer_bits) - 1
    };

    if bucket_bits == 0 {
        let mut local = Vec::with_capacity(capacity);
        extract_into(chunk, k, mask, &mut skipped, |packed| local.push(packed));
        local.sort_unstable();
        return (vec![local], skipped);
    }

    let shift = kmer_bits - bucket_bits;
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); 1 << bucket_bits];
    let reserve = capacity / buckets.len() + 8;
    for bucket in &mut buckets {
        bucket.reserve(reserve);
    }
    extract_into(chunk, k, mask, &mut skipped, |packed| {
        buckets[(packed >> shift) as usize].push(packed)
    });

    for bucket in &mut buckets {
        bucket.sort_unstable();
    }
    (buckets, skipped)
}

/// Slides the k-window over every usable read of `chunk`, feeding each packed
/// k-mer to `sink`.
fn extract_into(
    chunk: &[SequencingRead],
    k: usize,
    mask: u64,
    skipped: &mut usize,
    mut sink: impl FnMut(u64),
) {
    for read in chunk {
        if read.len() < k {
            *skipped += 1;
            continue;
        }
        let mut packed = 0u64;
        let mut filled = 0usize;
        for code in read.sequence().codes() {
            packed = ((packed << 2) | code as u64) & mask;
            filled += 1;
            if filled >= k {
                sink(packed);
            }
        }
    }
}

/// Merges one value-aligned segment of the two runs while run-length counting it,
/// emitting surviving k-mers straight from the packed representation.
fn merge_count_segment(
    a: &[u64],
    b: &[u64],
    k: usize,
    min_count: u32,
) -> (Vec<CountedKmer>, usize, usize) {
    if a.is_empty() || b.is_empty() {
        // Degenerate merge (single surviving run — always the case at one thread):
        // a plain run-length scan, no two-pointer bookkeeping.
        return run_length_count(if a.is_empty() { b } else { a }, k, min_count);
    }

    let total = a.len() + b.len();
    let mut counted = Vec::with_capacity(total / min_count.max(1) as usize + 1);
    let (mut distinct, mut pruned) = (0usize, 0usize);
    let mut current: Option<(u64, u32)> = None;

    let mut flush = |run: Option<(u64, u32)>, distinct: &mut usize, pruned: &mut usize| {
        if let Some((value, count)) = run {
            *distinct += 1;
            if count >= min_count {
                counted.push(CountedKmer {
                    kmer: Kmer::from_packed(value, k),
                    count,
                });
            } else {
                *pruned += 1;
            }
        }
    };

    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let value = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x <= y => {
                i += 1;
                x
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (_, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!("loop condition guarantees one side remains"),
        };
        match current {
            Some((v, c)) if v == value => current = Some((v, c + 1)),
            other => {
                flush(other, &mut distinct, &mut pruned);
                current = Some((value, 1));
            }
        }
    }
    flush(current, &mut distinct, &mut pruned);
    (counted, distinct, pruned)
}

/// Run-length counts one sorted run, pruning below `min_count`.
fn run_length_count(run: &[u64], k: usize, min_count: u32) -> (Vec<CountedKmer>, usize, usize) {
    let mut counted = Vec::with_capacity(run.len() / min_count.max(1) as usize + 1);
    let (mut distinct, mut pruned) = (0usize, 0usize);
    let mut i = 0usize;
    while i < run.len() {
        let value = run[i];
        let mut j = i + 1;
        while j < run.len() && run[j] == value {
            j += 1;
        }
        distinct += 1;
        let count = (j - i) as u32;
        if count >= min_count {
            counted.push(CountedKmer {
                kmer: Kmer::from_packed(value, k),
                count,
            });
        } else {
            pruned += 1;
        }
        i = j;
    }
    (counted, distinct, pruned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::reads_from;

    #[test]
    fn counts_simple_overlapping_kmers() {
        // "ACGTAC" with k=4 → ACGT, CGTA, GTAC
        let reads = reads_from(&["ACGTAC", "ACGTAC"]);
        let (counted, stats) = count_kmers(
            &reads,
            KmerCounterConfig {
                k: 4,
                min_count: 1,
                threads: 2,
            },
        )
        .unwrap();
        assert_eq!(stats.total_kmers, 6);
        assert_eq!(stats.distinct_kmers, 3);
        assert_eq!(counted.len(), 3);
        assert!(counted.iter().all(|c| c.count == 2));
    }

    #[test]
    fn output_is_sorted_ascending() {
        let reads = reads_from(&["TTTTGGGGCCCCAAAA", "GATTACAGATTACA"]);
        let (counted, _) = count_kmers(
            &reads,
            KmerCounterConfig {
                k: 5,
                min_count: 1,
                threads: 3,
            },
        )
        .unwrap();
        for pair in counted.windows(2) {
            assert!(
                pair[0].kmer < pair[1].kmer,
                "{:?} !< {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn pruning_removes_low_count_kmers() {
        let reads = reads_from(&["ACGTACGT", "ACGTACGT", "TTTTTTTT"]);
        let (counted, stats) = count_kmers(
            &reads,
            KmerCounterConfig {
                k: 6,
                min_count: 2,
                threads: 2,
            },
        )
        .unwrap();
        // The TTTTTT k-mer appears 3 times (windows of the single poly-T read), the
        // ACGTAC-family k-mers appear twice.
        assert!(counted.iter().all(|c| c.count >= 2));
        assert!(stats.pruned_kmers == 0 || stats.pruned_kmers < stats.distinct_kmers);
    }

    #[test]
    fn prune_threshold_filters_singletons() {
        let reads = reads_from(&["ACGTACGTAC", "GGGGGGGGGG"]);
        let (with_singletons, _) = count_kmers(
            &reads,
            KmerCounterConfig {
                k: 8,
                min_count: 1,
                threads: 1,
            },
        )
        .unwrap();
        let (without_singletons, stats) = count_kmers(
            &reads,
            KmerCounterConfig {
                k: 8,
                min_count: 2,
                threads: 1,
            },
        )
        .unwrap();
        assert!(without_singletons.len() < with_singletons.len());
        assert!(stats.pruned_kmers > 0);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let reads = reads_from(&[
            "ACGTACGTACGTTTTACG",
            "GGGCCCAAATTTACGTAG",
            "ACGTACGTACGTTTTACG",
            "TTGACCAGTTGACCAGTT",
        ]);
        let single = count_kmers(
            &reads,
            KmerCounterConfig {
                k: 7,
                min_count: 1,
                threads: 1,
            },
        )
        .unwrap()
        .0;
        for threads in [2, 3, 8] {
            let multi = count_kmers(
                &reads,
                KmerCounterConfig {
                    k: 7,
                    min_count: 1,
                    threads,
                },
            )
            .unwrap()
            .0;
            assert_eq!(single, multi, "threads = {threads}");
        }
    }

    #[test]
    fn short_reads_are_skipped() {
        let reads = reads_from(&["ACG", "ACGTACGT"]);
        let (_, stats) = count_kmers(
            &reads,
            KmerCounterConfig {
                k: 5,
                min_count: 1,
                threads: 2,
            },
        )
        .unwrap();
        assert_eq!(stats.skipped_reads, 1);
    }

    #[test]
    fn all_short_reads_is_an_error() {
        let reads = reads_from(&["ACG", "TT"]);
        assert!(matches!(
            count_kmers(
                &reads,
                KmerCounterConfig {
                    k: 5,
                    min_count: 1,
                    threads: 2
                }
            ),
            Err(PakmanError::EmptyInput { .. })
        ));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let reads = reads_from(&["ACGTACGT"]);
        assert!(count_kmers(
            &reads,
            KmerCounterConfig {
                k: 1,
                min_count: 1,
                threads: 1
            }
        )
        .is_err());
        assert!(count_kmers(
            &reads,
            KmerCounterConfig {
                k: 40,
                min_count: 1,
                threads: 1
            }
        )
        .is_err());
        assert!(count_kmers(
            &reads,
            KmerCounterConfig {
                k: 5,
                min_count: 1,
                threads: 0
            }
        )
        .is_err());
    }

    #[test]
    fn owner_partition_is_a_stable_cover() {
        let reads = reads_from(&["ACGTACGTACGTTTTACG", "GGGCCCAAATTTACGTAG"]);
        let (counted, _) = count_kmers(
            &reads,
            KmerCounterConfig {
                k: 7,
                min_count: 1,
                threads: 2,
            },
        )
        .unwrap();
        for shards in [1usize, 3, 8, 64] {
            let parts = partition_counted_by_owner(&counted, shards);
            assert_eq!(parts.len(), shards);
            // Every stream is ascending and owned by its shard.
            for (s, part) in parts.iter().enumerate() {
                for pair in part.windows(2) {
                    assert!(pair[0].kmer < pair[1].kmer);
                }
                for ck in part {
                    assert_eq!(
                        nmp_pak_genome::shard_of_packed(ck.kmer.packed() >> 2, shards),
                        s
                    );
                }
            }
            // The streams cover the input exactly once.
            let total: usize = parts.iter().map(Vec::len).sum();
            assert_eq!(total, counted.len());
        }
        // One shard reproduces the input verbatim.
        assert_eq!(partition_counted_by_owner(&counted, 1)[0], counted);
    }

    /// Deterministic pseudo-random reads big enough to overflow tiny budgets.
    fn synthetic_reads(count: usize, len: usize, seed: u64) -> Vec<SequencingRead> {
        let bases = ['A', 'C', 'G', 'T'];
        let mut state = seed | 1;
        let mut strings = Vec::with_capacity(count);
        for _ in 0..count {
            let mut s = String::with_capacity(len);
            for _ in 0..len {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s.push(bases[(state >> 33) as usize % 4]);
            }
            strings.push(s);
        }
        reads_from(&strings.iter().map(String::as_str).collect::<Vec<_>>())
    }

    #[test]
    fn spilled_counting_is_bit_identical_to_in_memory() {
        let reads = synthetic_reads(200, 80, 0xBEC4);
        let config = KmerCounterConfig {
            k: 11,
            min_count: 2,
            threads: 4,
        };
        let (expected, expected_stats) = count_kmers(&reads, config).unwrap();
        let spill = SpillConfig::bounded(4 * 1024);
        let (counted, stats, telemetry) = count_kmers_spilled(&reads, config, &spill, 8).unwrap();
        assert!(telemetry.bytes_spilled > 0, "{telemetry:?}");
        assert!(telemetry.merge_passes >= 1, "{telemetry:?}");
        assert!(telemetry.peak_resident_bytes > 0);
        assert_eq!(telemetry.partitions, 8);
        assert_eq!(counted, expected);
        assert_eq!(stats, expected_stats);
    }

    #[test]
    fn spilled_counting_without_overflow_stays_in_memory() {
        let reads = reads_from(&["ACGTACGTACGTTTTACG", "GGGCCCAAATTTACGTAG"]);
        let config = KmerCounterConfig {
            k: 7,
            min_count: 1,
            threads: 2,
        };
        let (expected, expected_stats) = count_kmers(&reads, config).unwrap();
        let (counted, stats, telemetry) =
            count_kmers_spilled(&reads, config, &SpillConfig::bounded(1 << 20), 4).unwrap();
        assert_eq!(telemetry.bytes_spilled, 0);
        assert_eq!(telemetry.merge_passes, 0);
        assert_eq!(counted, expected);
        assert_eq!(stats, expected_stats);
    }

    #[test]
    fn spilled_counting_requires_a_bounded_budget() {
        let reads = reads_from(&["ACGTACGT"]);
        let config = KmerCounterConfig {
            k: 5,
            min_count: 1,
            threads: 1,
        };
        let err = count_kmers_spilled(&reads, config, &SpillConfig::in_memory(), 1).unwrap_err();
        assert!(matches!(err, PakmanError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn total_count_is_conserved() {
        let reads = reads_from(&["ACGTACGTACGTACGT", "TGCATGCATGCA"]);
        let expected_total: u64 = reads.iter().map(|r| (r.len() - 6 + 1) as u64).sum();
        let (counted, stats) = count_kmers(
            &reads,
            KmerCounterConfig {
                k: 6,
                min_count: 1,
                threads: 2,
            },
        )
        .unwrap();
        assert_eq!(stats.total_kmers, expected_total);
        let sum: u64 = counted.iter().map(|c| c.count as u64).sum();
        assert_eq!(sum, expected_total);
    }
}
