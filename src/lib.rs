//! NMP-PaK — façade crate re-exporting the whole workspace.
//!
//! This is a reproduction of *"NMP-PaK: Near-Memory Processing Acceleration of
//! Scalable De Novo Genome Assembly"* (ISCA 2025). The system is split into focused
//! crates; this façade re-exports them under one roof so examples and downstream users
//! can depend on a single package:
//!
//! * [`genome`] — DNA substrate: bases, packed k-mers, synthetic reference genomes,
//!   an ART-like short-read simulator and FASTA/FASTQ I/O.
//! * [`pakman`] — the PaKman assembly algorithm: k-mer counting, MacroNodes, the
//!   PaK-graph, Iterative Compaction, contig generation and batch processing.
//! * [`memsim`] — the memory-system substrate: a DDR4 channel/bank timing model,
//!   CPU-core and GPU analytic models, and traffic/bandwidth statistics.
//! * [`nmphw`] — the NMP-PaK hardware model: pipelined systolic processing elements in
//!   the DIMM buffer chip, crossbar, inter-DIMM network bridge, hybrid CPU-NMP runtime
//!   and the area/power model.
//! * [`core`] — the end-to-end system: execution backends (CPU baseline, CPU-PaK, GPU,
//!   NMP-PaK and ideal variants) and one experiment driver per table/figure of the
//!   paper's evaluation.
//! * [`server`] — assembly-as-a-service: a multi-tenant job server scheduling many
//!   concurrent assemblies onto one shared worker pool under a global memory ledger,
//!   with priorities, cooperative cancellation and per-job progress-event streams.
//! * [`recipe`] — composable scenario-sweep recipes: axis/grid combinators with
//!   deterministic enumeration, declarative CI gates, and an executor that runs every
//!   cell through the pipeline (or the job server) into one structured report.

pub use nmp_pak_core as core;
pub use nmp_pak_genome as genome;
pub use nmp_pak_memsim as memsim;
pub use nmp_pak_nmphw as nmphw;
pub use nmp_pak_pakman as pakman;
pub use nmp_pak_recipe as recipe;
pub use nmp_pak_server as server;
