//! Property-based tests over the core data structures and invariants.

use nmp_pak::genome::{DnaString, Kmer, SequencingRead};
use nmp_pak::memsim::{AddressMapping, DramConfig, NodeLayout};
use nmp_pak::pakman::contig::n50;
use nmp_pak::pakman::graph::PakGraph;
use nmp_pak::pakman::kmer_count::{count_kmers, KmerCounterConfig};
use nmp_pak::pakman::transfer::{TransferNode, TransferSide};
use proptest::prelude::*;

fn dna_string_strategy(max_len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::sample::select(vec!['A', 'C', 'G', 'T']), 1..max_len)
        .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DnaString packs and unpacks losslessly.
    #[test]
    fn dna_ascii_round_trip(text in dna_string_strategy(200)) {
        let dna = DnaString::from_ascii(&text).unwrap();
        prop_assert_eq!(dna.to_ascii(), text);
    }

    /// Reverse complement is an involution and preserves length.
    #[test]
    fn reverse_complement_involution(text in dna_string_strategy(200)) {
        let dna = DnaString::from_ascii(&text).unwrap();
        let rc = dna.reverse_complement();
        prop_assert_eq!(rc.len(), dna.len());
        prop_assert_eq!(rc.reverse_complement(), dna);
    }

    /// Packed k-mers round-trip through their string form, and numeric comparison of
    /// equal-length k-mers matches lexicographic comparison under A<C<T<G.
    #[test]
    fn kmer_pack_order_consistency(a in dna_string_strategy(32), b in dna_string_strategy(32)) {
        let ka = Kmer::from_ascii(&a).unwrap();
        prop_assert_eq!(ka.to_string(), a.clone());
        if a.len() == b.len() {
            let kb = Kmer::from_ascii(&b).unwrap();
            let by_string = a.chars().map(code).collect::<Vec<_>>().cmp(&b.chars().map(code).collect::<Vec<_>>());
            prop_assert_eq!(ka.cmp(&kb), by_string);
        }
    }

    /// Sliding-window extraction matches direct per-position construction.
    #[test]
    fn kmer_windows_match_direct_extraction(text in dna_string_strategy(120), k in 2usize..16) {
        let dna = DnaString::from_ascii(&text).unwrap();
        prop_assume!(dna.len() >= k);
        let windows: Vec<Kmer> = Kmer::iter_windows(&dna, k).unwrap().collect();
        prop_assert_eq!(windows.len(), dna.len() - k + 1);
        for (i, kmer) in windows.iter().enumerate() {
            prop_assert_eq!(*kmer, Kmer::from_dna(&dna, i, k).unwrap());
        }
    }

    /// k-mer counting conserves the total number of extracted k-mers regardless of
    /// the thread count.
    #[test]
    fn kmer_count_conservation(texts in proptest::collection::vec(dna_string_strategy(80), 1..8),
                               threads in 1usize..5) {
        let reads: Vec<SequencingRead> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| SequencingRead::new(format!("r{i}"), t.parse().unwrap()))
            .collect();
        let k = 7;
        let expected: u64 = reads.iter().map(|r| r.len().saturating_sub(k - 1) as u64).sum();
        prop_assume!(expected > 0);
        let (counted, stats) = count_kmers(
            &reads,
            KmerCounterConfig { k, min_count: 1, threads },
        )
        .unwrap();
        prop_assert_eq!(stats.total_kmers, expected);
        prop_assert_eq!(counted.iter().map(|c| c.count as u64).sum::<u64>(), expected);
        // Output is sorted and duplicate-free.
        for pair in counted.windows(2) {
            prop_assert!(pair[0].kmer < pair[1].kmer);
        }
    }

    /// MacroNode construction preserves k-mer flow: every counted k-mer contributes at
    /// least its multiplicity to both sides of the graph, each node with flow on both
    /// sides is internally balanced, and every (k-1)-mer of the read appears as a node.
    #[test]
    fn pakgraph_conserves_kmer_flow(text in dna_string_strategy(150)) {
        prop_assume!(text.len() >= 8);
        let reads = vec![SequencingRead::new("r", text.parse().unwrap())];
        let k = 6;
        let (counted, _) = count_kmers(&reads, KmerCounterConfig { k, min_count: 1, threads: 1 }).unwrap();
        let total: u64 = counted.iter().map(|c| c.count as u64).sum();
        let graph = PakGraph::from_counted_kmers(&counted, k, 1);
        let prefix_flow: u64 = graph.iter_alive().map(|(_, n)| n.incoming_count() as u64).sum();
        let suffix_flow: u64 = graph.iter_alive().map(|(_, n)| n.outgoing_count() as u64).sum();
        // Read-boundary imbalance is wired through, so per-side flow can only grow.
        prop_assert!(prefix_flow >= total.saturating_sub(counted.len() as u64));
        prop_assert!(suffix_flow >= total.saturating_sub(counted.len() as u64));
        for (_, node) in graph.iter_alive() {
            if node.incoming_count() > 0 && node.outgoing_count() > 0 {
                prop_assert_eq!(node.incoming_count(), node.outgoing_count());
            }
        }
        // Every k-mer's prefix and suffix (k-1)-mers exist as nodes.
        for ck in &counted {
            prop_assert!(graph.contains(&ck.kmer.prefix_k1()));
            prop_assert!(graph.contains(&ck.kmer.suffix_k1()));
        }
    }

    /// TransferNode extraction preserves the spelled sequence: for every interior
    /// path, the predecessor-side and successor-side transfers describe the same
    /// string `prefix + (k-1)-mer + suffix`.
    #[test]
    fn transfer_nodes_preserve_spelling(k1 in dna_string_strategy(12), p in dna_string_strategy(6), s in dna_string_strategy(6)) {
        prop_assume!(k1.len() >= 2 && k1.len() <= 31);
        let mut node = nmp_pak::pakman::MacroNode::new(Kmer::from_ascii(&k1).unwrap());
        node.push_path(nmp_pak::pakman::ThroughPath::through(
            p.parse().unwrap(),
            s.parse().unwrap(),
            3,
        ));
        let spelled = format!("{p}{k1}{s}");
        for t in TransferNode::extract_all(&node) {
            let reconstructed = match t.side {
                TransferSide::Predecessor => format!("{}{}", t.destination, t.new_ext),
                TransferSide::Successor => format!("{}{}", t.new_ext, t.destination),
            };
            prop_assert_eq!(reconstructed, spelled.clone());
            prop_assert_eq!(t.count, 3);
        }
    }

    /// N50 is invariant under permutation, bounded by the maximum length, and at
    /// least as large as the median-covering length property requires.
    #[test]
    fn n50_properties(mut lengths in proptest::collection::vec(1usize..10_000, 1..50)) {
        let value = n50(&lengths);
        let max = *lengths.iter().max().unwrap();
        prop_assert!(value <= max);
        prop_assert!(lengths.contains(&value));
        // Permutation invariance.
        lengths.reverse();
        prop_assert_eq!(n50(&lengths), value);
        // Contigs of length >= N50 cover at least half of the assembly.
        let total: usize = lengths.iter().sum();
        let covered: usize = lengths.iter().filter(|&&l| l >= value).sum();
        prop_assert!(covered * 2 >= total);
    }

    /// Address decomposition stays within the configured geometry and is stable.
    #[test]
    fn address_mapping_is_in_bounds(addr in 0u64..(1 << 40)) {
        let config = DramConfig::default();
        let mapping = AddressMapping::new(config, 1 << 32);
        let loc = mapping.locate(addr);
        prop_assert!(loc.channel < config.channels);
        prop_assert!(loc.rank < config.ranks_per_channel);
        prop_assert!(loc.bank < config.banks_per_rank);
        prop_assert!((loc.column as usize) < config.row_buffer_bytes / config.line_bytes);
        prop_assert_eq!(mapping.flat_bank(loc), mapping.flat_bank(mapping.locate(addr)));
    }

    /// The MacroNode layout never overlaps allocations within a DIMM and assigns
    /// every slot to a valid DIMM.
    #[test]
    fn node_layout_is_disjoint(sizes in proptest::collection::vec(1usize..4096, 1..120)) {
        let config = DramConfig::default();
        let layout = NodeLayout::new(&sizes, &config);
        for slot in 0..sizes.len() {
            prop_assert!(layout.dimm_of(slot) < config.channels);
            prop_assert!(layout.allocated_size(slot) >= sizes[slot]);
        }
        let mut per_dimm: std::collections::HashMap<usize, Vec<(u64, u64)>> = std::collections::HashMap::new();
        for slot in 0..sizes.len() {
            let start = layout.address_of(slot);
            per_dimm
                .entry(layout.dimm_of(slot))
                .or_default()
                .push((start, start + layout.allocated_size(slot) as u64));
        }
        for ranges in per_dimm.values_mut() {
            ranges.sort();
            for pair in ranges.windows(2) {
                prop_assert!(pair[0].1 <= pair[1].0, "overlapping allocations");
            }
        }
    }
}

fn code(c: char) -> u8 {
    match c {
        'A' => 0,
        'C' => 1,
        'T' => 2,
        _ => 3,
    }
}
