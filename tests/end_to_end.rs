//! Cross-crate integration tests: genome → reads → PaKman pipeline → hardware
//! simulation, exercised through the public façade.

use nmp_pak::core::assembler::NmpPakAssembler;
use nmp_pak::core::backend::BackendId;
use nmp_pak::core::workload::Workload;
use nmp_pak::genome::{ReadSimulator, ReferenceGenome, SequencerConfig};
use nmp_pak::pakman::{BatchAssembler, PakmanAssembler, PakmanConfig};

fn clean_reads(
    genome_len: usize,
    coverage: f64,
    seed: u64,
) -> (ReferenceGenome, Vec<nmp_pak::genome::SequencingRead>) {
    let genome = ReferenceGenome::builder()
        .length(genome_len)
        .no_repeats()
        .seed(seed)
        .build()
        .expect("genome builds");
    let reads = ReadSimulator::new(SequencerConfig {
        coverage,
        substitution_error_rate: 0.0,
        seed: seed + 1,
        ..SequencerConfig::default()
    })
    .simulate(&genome)
    .expect("simulation succeeds");
    (genome, reads)
}

#[test]
fn error_free_assembly_recovers_most_of_the_genome() {
    let (genome, reads) = clean_reads(30_000, 30.0, 404);
    let output = PakmanAssembler::new(PakmanConfig {
        k: 23,
        min_kmer_count: 1,
        threads: 4,
        ..PakmanConfig::default()
    })
    .assemble(&reads)
    .expect("assembly succeeds");

    assert!(
        output.stats.total_length as f64 >= 0.9 * genome.len() as f64,
        "assembled {} of {}",
        output.stats.total_length,
        genome.len()
    );
    assert!(
        output.stats.largest_contig as f64 >= 0.2 * genome.len() as f64,
        "largest contig {} too small",
        output.stats.largest_contig
    );
    // Compaction must shrink the graph substantially without losing sequence.
    assert!(output.compaction.reduction_factor() > 2.0);
}

#[test]
fn noisy_reads_still_assemble_after_pruning() {
    let genome = ReferenceGenome::builder()
        .length(20_000)
        .seed(77)
        .build()
        .unwrap();
    let reads = ReadSimulator::new(SequencerConfig {
        coverage: 40.0,
        substitution_error_rate: 0.005,
        seed: 78,
        ..SequencerConfig::default()
    })
    .simulate(&genome)
    .unwrap();
    let output = PakmanAssembler::new(PakmanConfig {
        k: 21,
        min_kmer_count: 3,
        threads: 4,
        ..PakmanConfig::default()
    })
    .assemble(&reads)
    .expect("assembly succeeds");
    assert!(output.stats.total_length as f64 > 0.7 * genome.len() as f64);
    assert!(
        output.kmer_stats.pruned_kmers > 0,
        "error k-mers should be pruned"
    );
}

#[test]
fn batched_and_unbatched_assemblies_cover_similar_content() {
    let (_genome, reads) = clean_reads(20_000, 25.0, 99);
    let config = PakmanConfig {
        k: 21,
        min_kmer_count: 1,
        threads: 2,
        ..PakmanConfig::default()
    };
    let unbatched = PakmanAssembler::new(config).assemble(&reads).unwrap();
    let batched = BatchAssembler::new(config, 0.25).assemble(&reads).unwrap();
    let ratio = batched.stats.total_length as f64 / unbatched.stats.total_length as f64;
    assert!(
        (0.4..=1.25).contains(&ratio),
        "batched/unbatched coverage ratio {ratio}"
    );
    // Batching must cut the peak footprint. (The N50-vs-batch-size trend of Table 1 is
    // asserted in `nmp-pak-pakman`'s batch tests and the Table 1 experiment test.)
    assert!(batched.footprint_reduction() > 2.0);
}

#[test]
fn all_backends_simulate_the_same_workload_consistently() {
    let workload = Workload::tiny(2024).unwrap();
    let assembler = NmpPakAssembler::default();
    let (_, results) = assembler.run_all_backends(&workload).unwrap();
    assert_eq!(results.len(), assembler.registry().len());

    let by = |b: BackendId| results.iter().find(|r| r.backend == b).unwrap();
    let baseline = by(BackendId::CPU_BASELINE);
    let nmp = by(BackendId::NMP_PAK);
    let cpu_pak = by(BackendId::CPU_PAK);
    let ideal_fwd = by(BackendId::NMP_IDEAL_FORWARDING);

    // Headline orderings of Figs. 12–14.
    assert!(nmp.speedup_over(baseline) > cpu_pak.speedup_over(baseline));
    assert!(nmp.speedup_over(baseline) > 3.0);
    assert!(ideal_fwd.speedup_over(baseline) >= nmp.speedup_over(baseline));
    assert!(nmp.bandwidth_utilization() > baseline.bandwidth_utilization());
    assert!(nmp.traffic.read_bytes < baseline.traffic.read_bytes);
    assert!(nmp.traffic.write_bytes < baseline.traffic.write_bytes);
}

#[test]
fn hardware_simulation_is_deterministic() {
    let workload = Workload::tiny(5).unwrap();
    let assembler = NmpPakAssembler::default();
    let a = assembler.run(&workload, BackendId::NMP_PAK).unwrap();
    let b = assembler.run(&workload, BackendId::NMP_PAK).unwrap();
    assert_eq!(a.backend_result.runtime_ns, b.backend_result.runtime_ns);
    assert_eq!(a.backend_result.traffic, b.backend_result.traffic);
    assert_eq!(a.assembly.stats, b.assembly.stats);
}
